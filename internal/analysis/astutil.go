package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsGovernorType reports whether t is one of the execution-governance
// types every kernel loop is expected to poll: context.Context or
// *exec.Run (matched by package-path suffix so fixture modules work).
func IsGovernorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if IsContextType(t) {
		return true
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/exec") && obj.Name() == "Run"
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex (rw tells
// which).
func IsMutexType(t types.Type) (ok, rw bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// HasWriteMethod reports whether t (or *t) has a Write([]byte) (int,
// error) method — the structural io.Writer check, which also matches
// strings.Builder and bytes.Buffer whose output order is visible.
func HasWriteMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			f, ok := ms.At(i).Obj().(*types.Func)
			if !ok || f.Name() != "Write" {
				continue
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
				continue
			}
			slice, ok := sig.Params().At(0).Type().(*types.Slice)
			if !ok {
				continue
			}
			if b, ok := slice.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// ExprString renders an expression as source text — used to compare
// receiver paths like "idx" or "s.inner" syntactically.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// WalkStack walks the subtree rooted at n, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// If fn returns false the node's children are skipped.
func WalkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// CalleeFunc resolves the *types.Func a call invokes (function, method,
// or qualified identifier); nil for builtins, conversions, and calls of
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// ReferencesObject reports whether the subtree mentions the object.
func ReferencesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
