// Package detrange flags map iteration whose order leaks into output.
//
// Go randomizes map iteration order on purpose. Anywhere a `range` over
// a map feeds an ordered sink — bytes written to an io.Writer or
// strings.Builder, rows appended to a result slice, lines of a golden
// file — the output becomes nondeterministic: golden tests flake,
// GRAPH.DUMP round-trips stop being byte-identical, and the
// differential harness (PR 2) can no longer diff serialized results.
//
// The analyzer flags a `range` statement over a map when its body
//
//   - writes through anything with a Write method (io.Writer,
//     strings.Builder, bytes.Buffer), calls fmt print/fprint helpers,
//     or calls an encoder's Encode — output emitted in map order; or
//   - appends to a slice declared outside the loop that is not passed
//     to a sort (sort.* / slices.Sort*) later in the same function —
//     the collect-then-sort idiom is the accepted fix and is not
//     flagged.
//
// Writes keyed by the ranged key (out[k] = v) are order-independent
// and accepted, as are pure reductions (counters, set unions).
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags range-over-map loops that emit output or build slices in " +
		"iteration order without sorting, which makes results nondeterministic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn := enclosingFuncBody(n)
			if fn == nil {
				return true
			}
			reported := map[token.Pos]bool{}
			ast.Inspect(fn, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[rng.X]; !ok || !isMap(tv.Type) {
					return true
				}
				checkMapRange(pass, fn, rng, reported)
				return true
			})
			return false
		})
	}
	return nil
}

// enclosingFuncBody returns the body when n is a function declaration
// or literal; nil otherwise.
func enclosingFuncBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && !reported[call.Pos()] {
			if reason := outputCall(pass, call); reason != "" {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "%s inside range over a map: iteration order is random, so the output is nondeterministic — iterate sorted keys instead", reason)
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				if obj := outerSliceTarget(pass, call.Args[0], rng); obj != nil && !sortedLater(pass, fn, rng, obj) {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(), "append to %q inside range over a map without sorting it afterwards: element order is nondeterministic — sort %q before use (sort.* / slices.Sort*)", obj.Name(), obj.Name())
				}
			}
		}
		return true
	})
}

// outputCall classifies calls that emit bytes in call order; "" means
// not an output call.
func outputCall(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// fmt.Print*/Fprint* helpers.
		if f := analysis.CalleeFunc(pass.TypesInfo, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			switch f.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + f.Name() + " call"
			}
		}
		// Writer-ish method receivers: Write*, Encode.
		name := fun.Sel.Name
		isWriteName := name == "Encode" || name == "WriteString" || name == "WriteByte" ||
			name == "WriteRune" || name == "Write"
		if !isWriteName {
			return ""
		}
		if tv, ok := pass.TypesInfo.Types[fun.X]; ok && tv.Type != nil {
			t := tv.Type
			if analysis.HasWriteMethod(t) || name == "Encode" {
				return name + " on " + t.String()
			}
		}
	}
	return ""
}

// outerSliceTarget resolves append's first argument to a slice variable
// declared outside the range statement; nil otherwise.
func outerSliceTarget(pass *analysis.Pass, arg ast.Expr, rng *ast.RangeStmt) types.Object {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // loop-local accumulator: scoped per iteration
	}
	return obj
}

// sortedLater reports whether, after the range statement, the function
// passes the slice to a sorting call: anything from the sort or slices
// packages (including indirectly inside a comparison closure, as in
// sort.Slice), or a helper whose name contains "Sort" (the repository's
// canonicalization helpers, e.g. oracle.SortPairs).
func sortedLater(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil {
			return true
		}
		isSorter := strings.Contains(f.Name(), "Sort") || strings.Contains(f.Name(), "sort")
		if p := f.Pkg(); p != nil && (p.Path() == "sort" || p.Path() == "slices") {
			isSorter = true
		}
		if !isSorter {
			return true
		}
		for _, arg := range call.Args {
			if analysis.ReferencesObject(pass.TypesInfo, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
