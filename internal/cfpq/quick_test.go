package cfpq

import (
	"testing"
	"testing/quick"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// quickGraph materializes a graph from raw fuzz-style bytes.
func quickGraph(n int, edges []uint16) *graph.Graph {
	g := graph.New(n)
	labels := []string{"a", "b"}
	for _, e := range edges {
		src := int(e>>8) % n
		dst := int(e&0xff) % n
		g.AddEdge(src, labels[int(e)%2], dst)
	}
	return g
}

// Property (testing/quick): the multiple-source answer is always a
// subset of the all-pairs relation and exactly equals its row
// restriction — the core claim of Algorithm 2, driven by generated
// inputs rather than a hand-rolled loop.
func TestMultiSourceRestrictionQuick(t *testing.T) {
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	f := func(edges []uint16, seeds []uint8) bool {
		const n = 20
		g := quickGraph(n, edges)
		src := matrix.NewVector(n)
		for _, s := range seeds {
			src.Set(int(s) % n)
		}
		ap, err := AllPairs(g, w)
		if err != nil {
			return false
		}
		ms, err := MultiSource(g, w, src)
		if err != nil {
			return false
		}
		return ms.Answer().Equal(matrix.ExtractRows(ap.Start(), src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): the answer is monotone in the source set.
func TestMultiSourceMonotoneQuick(t *testing.T) {
	w := grammar.MustWCNF(grammar.SameGen("a"))
	f := func(edges []uint16, seeds []uint8) bool {
		const n = 18
		g := quickGraph(n, edges)
		small := matrix.NewVector(n)
		big := matrix.NewVector(n)
		for i, s := range seeds {
			big.Set(int(s) % n)
			if i%3 == 0 {
				small.Set(int(s) % n)
			}
		}
		rs, err := MultiSource(g, w, small)
		if err != nil {
			return false
		}
		rb, err := MultiSource(g, w, big)
		if err != nil {
			return false
		}
		// Every pair answered for the small set appears for the big set.
		ok := true
		rs.Answer().Iterate(func(i, j int) bool {
			if !rb.Answer().Get(i, j) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): all five all-pairs engines agree (naive,
// semi-naive, worklist, hybrid kernels, parallel kernels).
func TestAllEnginesAgreeQuick(t *testing.T) {
	w := grammar.MustWCNF(grammar.Dyck1("a", "b"))
	f := func(edges []uint16) bool {
		const n = 14
		g := quickGraph(n, edges)
		base, err := AllPairs(g, w)
		if err != nil {
			return false
		}
		sn, err := AllPairsSemiNaive(g, w)
		if err != nil || !sn.Start().Equal(base.Start()) {
			return false
		}
		wl, err := Worklist(g, w)
		if err != nil || !wl.Start().Equal(base.Start()) {
			return false
		}
		hy, err := AllPairs(g, w, WithHybridKernels())
		if err != nil || !hy.Start().Equal(base.Start()) {
			return false
		}
		par, err := AllPairs(g, w, WithWorkers(3))
		if err != nil || !par.Start().Equal(base.Start()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
