// Package use holds near misses for obscatalog: catalog constants,
// obs-derived names, matching literals, and the forwarding idiom.
package use

import "obscatneg/obs"

// startSpan forwards its name parameter — the wrapper idiom; its call
// sites are checked instead.
func startSpan(t *obs.Trace, name string) {
	t.Start(name)
}

func Good(t *obs.Trace) {
	t.Start(obs.SpanQuery)     // catalog constant
	t.Start(obs.SpanRound(3))  // obs-derived dynamic name
	t.Start("query")           // literal matching a registered name
	t.Start(obs.SpanBatchWait) // batch-layer span constant
	startSpan(t, obs.SpanQuery)
	obs.KernelOps.Inc()
	obs.BatchGroups.Inc()
	obs.NewTrace(obs.SpanQuery)
}
