package cfpq

import (
	"fmt"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// Index is the persistent cache of the optimized multiple-source
// algorithm (Algorithm 3): it pins a graph and a grammar and accumulates
// the relation matrices T and the already-processed source matrices
// TSrc across queries, so repeated or overlapping source sets reuse all
// previously computed facts instead of recomputing them from scratch.
//
// An Index is bound to an immutable snapshot of the graph: mutating the
// graph after NewIndex invalidates the cache (the paper's setting —
// static graph, repeated queries). Not safe for concurrent use.
type Index struct {
	G *graph.Graph
	W *grammar.WCNF

	T    []*matrix.Bool // cached relation matrices, grown monotonically
	TSrc []*matrix.Bool // sources already fully processed, per nonterminal

	opts    Options
	queries int
}

// NewIndex creates an empty cache for (g, w), seeding T from the simple
// and eps rules once; subsequent queries share the seeded matrices.
func NewIndex(g *graph.Graph, w *grammar.WCNF, opts ...Option) (*Index, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	idx := &Index{G: g, W: w, opts: buildOptions(opts)}
	r := newResult(w, n)
	initSimpleRules(r, g)
	initEpsRules(r, n)
	idx.T = r.T
	idx.TSrc = make([]*matrix.Bool, w.NumNonterms())
	for a := range idx.TSrc {
		idx.TSrc[a] = matrix.NewBool(n, n)
	}
	return idx, nil
}

// Queries returns the number of queries evaluated against the index.
func (idx *Index) Queries() int { return idx.queries }

// CachedSources returns the set of vertices whose start-nonterminal
// paths are already fully computed.
func (idx *Index) CachedSources() *matrix.Vector {
	return matrix.DiagVector(idx.TSrc[idx.W.Start])
}

// MultiSourceSmart evaluates a multiple-source query against the cache
// (Algorithm 3). Vertices of src already present in the index are
// filtered out up front (line 3); during the fixpoint, propagated
// sources are filtered against the cached TSrc (lines 9-10) so each
// vertex is processed at most once per nonterminal across the lifetime
// of the index.
func (idx *Index) MultiSourceSmart(src *matrix.Vector) (*MSResult, error) {
	if src == nil {
		return nil, fmt.Errorf("cfpq: nil source vector")
	}
	return idx.MultiSourceSmartFrom(map[int]*matrix.Vector{idx.W.Start: src})
}

// MultiSourceSmartFrom is the generalization of Algorithm 3 the database
// layer uses (Section 4.3.2): source sets may be requested for arbitrary
// nonterminals (the named path patterns an operation depends on), and
// the cache is shared across all of them.
func (idx *Index) MultiSourceSmartFrom(srcByNT map[int]*matrix.Vector) (*MSResult, error) {
	n := idx.G.NumVertices()
	idx.queries++
	w := idx.W

	newSrc := make([]*matrix.Bool, w.NumNonterms())
	for a := range newSrc {
		newSrc[a] = matrix.NewBool(n, n)
	}
	requested := matrix.NewVector(n)
	// Line 3: only sources not yet in the cache enter the computation.
	for a, src := range srcByNT {
		if a < 0 || a >= w.NumNonterms() {
			return nil, fmt.Errorf("cfpq: source nonterminal id %d out of range", a)
		}
		if src == nil || src.Size() != n {
			return nil, fmt.Errorf("cfpq: source vector size mismatch (graph has %d vertices)", n)
		}
		fresh := src.Clone()
		fresh.DiffInPlace(matrix.DiagVector(idx.TSrc[a]))
		matrix.AddInPlace(newSrc[a], fresh.Diag())
		if a == w.Start {
			requested = src.Clone()
		}
	}

	for changed := true; changed; {
		changed = false
		for _, rule := range w.BinRules {
			m := idx.opts.mul(newSrc[rule.A], idx.T[rule.B])
			if matrix.AddInPlace(idx.T[rule.A], idx.opts.mul(m, idx.T[rule.C])) {
				changed = true
			}
			// TNewSrc^B += TNewSrc^A \ index.TSrc^B (line 9).
			deltaB := matrix.Sub(newSrc[rule.A], idx.TSrc[rule.B])
			if matrix.AddInPlace(newSrc[rule.B], deltaB) {
				changed = true
			}
			// TNewSrc^C += getDst(M) \ index.TSrc^C (line 10).
			deltaC := matrix.Sub(matrix.GetDst(m), idx.TSrc[rule.C])
			if matrix.AddInPlace(newSrc[rule.C], deltaC) {
				changed = true
			}
		}
	}
	// Fold the processed sources into the cache.
	for a := range newSrc {
		matrix.AddInPlace(idx.TSrc[a], newSrc[a])
	}
	return &MSResult{
		Result:  &Result{W: w, T: idx.T},
		Src:     idx.TSrc,
		Sources: requested,
	}, nil
}

// Relation returns the cached relation matrix for a nonterminal id. The
// matrix is shared with the index and grows as queries are evaluated.
func (idx *Index) Relation(a int) *matrix.Bool { return idx.T[a] }
