// Package obsneg holds errdrop negatives for the observability scope:
// handled serialization errors and the error-free instrument calls
// that make up nearly all obs usage.
package obsneg

import (
	"net/http"

	"mscfpq/internal/obs"
)

// handled propagates the encoding failure to the client, the real
// endpoint's behavior.
func handled(w http.ResponseWriter) {
	body, err := obs.MarshalSnapshot(obs.Default.Snapshot())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(body)
}

// instruments exercises the hot-path API: counters and histograms
// return nothing, so the scope extension adds no friction there.
func instruments() {
	obs.KernelMulOps.Add(1)
	obs.GdbQueryLatencyUS.Observe(42)
	obs.SetEnabled(true)
}
