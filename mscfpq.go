// Package mscfpq is a Go implementation of multiple-source context-free
// path querying (CFPQ) in terms of sparse Boolean linear algebra, after
// Terekhov et al., "Multiple-Source Context-Free Path Querying in Terms
// of Linear Algebra" (EDBT 2021), together with the full-stack graph
// database layer the paper builds: a Cypher dialect with openCypher path
// patterns, execution plans with a CFPQTraverse operation, and a
// RESP-protocol server.
//
// This root package is the public facade: it re-exports the user-facing
// types and constructors so applications depend on one import path. The
// implementation lives in internal/ packages (see DESIGN.md for the map).
//
// # Quick start
//
//	g := mscfpq.NewGraph(4)
//	g.AddEdge(0, "a", 1)
//	g.AddEdge(1, "b", 2)
//	gr, _ := mscfpq.ParseGrammar("S -> a S b | a b")
//	w, _ := mscfpq.ToWCNF(gr)
//	src := mscfpq.NewVertexSet(g.NumVertices(), 0)
//	res, _ := mscfpq.MultiSource(g, w, src)
//	fmt.Println(res.Answer().Pairs())
package mscfpq

import (
	"mscfpq/internal/cfpq"
	"mscfpq/internal/dataset"
	"mscfpq/internal/exec"
	"mscfpq/internal/gdb"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
	"mscfpq/internal/resp"
	"mscfpq/internal/rpq"
	"mscfpq/internal/rsm"
)

// Execution governance. Every query entry point accepts functional
// options controlling cancellation, resource budgets and kernel choice:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, err := mscfpq.MultiSource(g, w, src,
//		mscfpq.WithContext(ctx),
//		mscfpq.WithBudget(1_000_000))
//
// A governed query returns context.Canceled / context.DeadlineExceeded
// when its context fires, or ErrBudget when it exceeds its work budget
// (cumulative relation entries produced across fixpoint iterations).
type (
	// Option configures one query execution.
	Option = exec.Option
	// Engine selects the evaluation strategy of EvalRPQ.
	Engine = exec.Engine
	// Algorithm selects the evaluation strategy of EvalCFPQ.
	Algorithm = exec.Algorithm
	// Trace records a per-query span tree with kernel counter deltas;
	// attach one with WithTrace and render it with Trace.Render.
	Trace = obs.Trace
	// TraceSpan is one timed stage of a traced query.
	TraceSpan = obs.Span
)

var (
	// WithContext bounds the query by a caller context.
	WithContext = exec.WithContext
	// WithTimeout bounds the query by a wall-clock duration.
	WithTimeout = exec.WithTimeout
	// WithBudget bounds the query's work (relation entries produced).
	WithBudget = exec.WithBudget
	// WithWorkers sets the matrix-kernel parallelism (0 = sequential).
	WithWorkers = exec.WithWorkers
	// WithHybridKernels enables density-adaptive multiplication kernels.
	WithHybridKernels = exec.WithHybridKernels
	// WithEngine selects the RPQ evaluation engine (see EvalRPQ).
	WithEngine = exec.WithEngine
	// WithAlgorithm selects the CFPQ evaluation algorithm (see EvalCFPQ).
	WithAlgorithm = exec.WithAlgorithm
	// WithTrace attaches a per-query trace recording stage spans and
	// kernel counter deltas.
	WithTrace = exec.WithTrace
	// NewTrace starts a trace for WithTrace; call Trace.Close when the
	// query returns, then Trace.Render or Trace.Root to inspect it.
	NewTrace = obs.NewTrace

	// ErrBudget is returned when a query exceeds its work budget.
	ErrBudget = exec.ErrBudget
)

// CFPQ algorithms for WithAlgorithm.
const (
	// AlgAuto picks by query shape: multiple-source when a source set
	// is given, all-pairs otherwise.
	AlgAuto = exec.AlgAuto
	// AlgMatrix is the all-pairs matrix algorithm (Algorithm 1).
	AlgMatrix = exec.AlgMatrix
	// AlgSemiNaive is the delta-driven all-pairs variant.
	AlgSemiNaive = exec.AlgSemiNaive
	// AlgWorklist is the non-linear-algebra CFL-reachability baseline.
	AlgWorklist = exec.AlgWorklist
	// AlgMultiSource is the multiple-source algorithm (Algorithm 2).
	AlgMultiSource = exec.AlgMultiSource
	// AlgSinglePath is all-pairs with single-path witness extraction.
	AlgSinglePath = exec.AlgSinglePath
	// AlgMSSinglePath is multiple-source with single-path witness
	// extraction.
	AlgMSSinglePath = exec.AlgMSSinglePath
)

// RPQ engines for WithEngine.
const (
	// EngineAuto picks the default engine (minimized DFA).
	EngineAuto = exec.EngineAuto
	// EngineNFA simulates the compiled NFA directly.
	EngineNFA = exec.EngineNFA
	// EngineDFA determinizes and minimizes first (usually fastest).
	EngineDFA = exec.EngineDFA
	// EngineCFPQ reduces the regex to a context-free grammar and runs
	// the multiple-source CFPQ algorithm.
	EngineCFPQ = exec.EngineCFPQ
	// EngineTensor runs the Kronecker-product RSM algorithm.
	EngineTensor = exec.EngineTensor
)

// Core data model.
type (
	// Graph is an edge- and vertex-labeled directed graph stored as
	// Boolean label matrices (the paper's data model).
	Graph = graph.Graph
	// Grammar is a context-free grammar over graph labels.
	Grammar = grammar.Grammar
	// WCNF is a grammar in weak Chomsky normal form, the input format of
	// the matrix algorithms.
	WCNF = grammar.WCNF
	// VertexSet is a sparse set of vertices (query sources, results).
	VertexSet = matrix.Vector
	// BoolMatrix is a sparse Boolean matrix (relations, adjacency).
	BoolMatrix = matrix.Bool
)

// Query results.
type (
	// Result holds one relation matrix per grammar nonterminal.
	Result = cfpq.Result
	// MSResult is a multiple-source result; Answer() restricts the start
	// relation to the queried sources.
	MSResult = cfpq.MSResult
	// Index is the cross-query cache of the optimized multiple-source
	// algorithm (Algorithm 3).
	Index = cfpq.Index
	// SinglePathResult additionally reconstructs witness paths.
	SinglePathResult = cfpq.SinglePathResult
	// MSSinglePathResult is a multiple-source result with single-path
	// semantics (MultiSourceSinglePath).
	MSSinglePathResult = cfpq.MSSinglePathResult
	// PathStep is one edge (or vertex-label step) of an extracted path.
	PathStep = cfpq.PathStep
	// CFPQResult is the unified result of EvalCFPQ: answer pairs plus
	// evaluation statistics, independent of the algorithm.
	CFPQResult = cfpq.EvalResult
	// PathCFPQResult is the CFPQResult extension of the single-path
	// algorithms: one witness path per answer pair.
	PathCFPQResult = cfpq.PathEvalResult
	// CFPQStats reports how an EvalCFPQ evaluation ran (algorithm,
	// fixpoint rounds, governor work, answer count).
	CFPQStats = cfpq.Stats
)

// Database layer.
type (
	// DB is the in-memory multi-graph database.
	DB = gdb.DB
	// GraphStore couples a graph with node properties inside a DB.
	GraphStore = gdb.GraphStore
	// QueryResult is the outcome of one Cypher statement.
	QueryResult = gdb.QueryResult
	// Server serves a DB over the RESP protocol.
	Server = resp.Server
	// Client is a RESP client for the server.
	Client = resp.Client
	// QueryReply is a decoded GRAPH.QUERY response.
	QueryReply = resp.QueryReply
)

// Regular path querying.
type (
	// NFA is a compiled regular path query.
	NFA = rpq.NFA
	// DFA is a determinized (optionally minimized) regular path query.
	DFA = rpq.DFA
	// RSM is a recursive state machine for the tensor CFPQ algorithm.
	RSM = rsm.RSM
)

// DatasetSpec describes one synthetic analog of the paper's graphs.
type DatasetSpec = dataset.Spec

// NewGraph returns an empty graph with n vertices; it grows on demand.
func NewGraph(n int) *Graph { return graph.New(n) }

// LoadGraph reads a graph from the textual edge-list format.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph in the textual edge-list format.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// ParseGrammar parses a grammar ("S -> a S b | a b"; see internal/grammar).
func ParseGrammar(src string) (*Grammar, error) { return grammar.ParseString(src) }

// LoadGrammar reads a grammar file.
func LoadGrammar(path string) (*Grammar, error) { return grammar.LoadFile(path) }

// ToWCNF normalizes a grammar to weak Chomsky normal form.
func ToWCNF(g *Grammar) (*WCNF, error) { return grammar.ToWCNF(g) }

// G1 is the paper's same-generation query over subClassOf and type
// (eq. 1).
func G1() *Grammar { return grammar.G1() }

// G2 is the paper's same-generation query over subClassOf alone (eq. 2).
func G2() *Grammar { return grammar.G2() }

// Geo is the paper's geospecies query over broaderTransitive (eq. 3).
func Geo() *Grammar { return grammar.Geo() }

// AnBnGrammar is the classic bracket-matching query S -> a S b | a b
// used by the paper's running examples and the stress benchmarks.
func AnBnGrammar() *Grammar { return grammar.AnBn("a", "b") }

// NewVertexSet builds a vertex set of size n containing the given ids.
// Duplicate ids collapse to one membership; negative or out-of-range
// ids denote no vertex of the graph and are dropped, so a set built
// from untrusted input is always well-formed. Querying with it then
// returns the answer for the valid vertices (paths from a vertex that
// does not exist are simply absent).
func NewVertexSet(n int, ids ...int) *VertexSet {
	valid := make([]int, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < n {
			valid = append(valid, id)
		}
	}
	return matrix.NewVectorFromIndices(n, valid)
}

// EvalCFPQ is the unified CFPQ entry point, mirroring EvalRPQ: it
// evaluates the query defined by w over g with the algorithm selected
// by WithAlgorithm (AlgAuto picks multiple-source when src is non-nil,
// all-pairs otherwise). A non-nil src restricts the answer to those
// sources under every algorithm, so the options are interchangeable:
//
//	res, err := mscfpq.EvalCFPQ(g, w, src)                              // Algorithm 2
//	res, err := mscfpq.EvalCFPQ(g, w, nil,
//		mscfpq.WithAlgorithm(mscfpq.AlgSemiNaive))                      // all-pairs, delta iteration
//
// Results from AlgSinglePath and AlgMSSinglePath additionally satisfy
// PathCFPQResult. All exec options (timeout, budget, workers, trace)
// apply.
func EvalCFPQ(g *Graph, w *WCNF, src *VertexSet, opts ...Option) (CFPQResult, error) {
	return cfpq.Eval(g, w, src, opts...)
}

// AllPairs runs Azimov's all-pairs CFPQ algorithm (Algorithm 1).
//
// Deprecated: use EvalCFPQ with WithAlgorithm(AlgMatrix); AllPairs
// remains for callers that need the concrete Result with its
// per-nonterminal relation matrices.
func AllPairs(g *Graph, w *WCNF, opts ...Option) (*Result, error) {
	return cfpq.AllPairs(g, w, opts...)
}

// MultiSource runs the paper's multiple-source algorithm (Algorithm 2).
//
// Deprecated: use EvalCFPQ with WithAlgorithm(AlgMultiSource);
// MultiSource remains for callers that need the concrete MSResult with
// its source matrices.
func MultiSource(g *Graph, w *WCNF, src *VertexSet, opts ...Option) (*MSResult, error) {
	return cfpq.MultiSource(g, w, src, opts...)
}

// NewIndex builds the cross-query cache for the optimized
// multiple-source algorithm (Algorithm 3); query it with
// Index.MultiSourceSmart. Options given here become the defaults for
// every query on the index; per-query options override them.
func NewIndex(g *Graph, w *WCNF, opts ...Option) (*Index, error) {
	return cfpq.NewIndex(g, w, opts...)
}

// SinglePath runs all-pairs CFPQ with single-path semantics; the result
// reconstructs one witness path per reachability fact.
//
// Deprecated: use EvalCFPQ with WithAlgorithm(AlgSinglePath); the
// result satisfies PathCFPQResult. SinglePath remains for callers that
// need the concrete SinglePathResult.
func SinglePath(g *Graph, w *WCNF, opts ...Option) (*SinglePathResult, error) {
	return cfpq.SinglePath(g, w, opts...)
}

// MultiSourceSinglePath combines the multiple-source restriction of
// Algorithm 2 with single-path semantics: only paths from src are
// computed, and each answer pair can be expanded into a witness path.
//
// Deprecated: use EvalCFPQ with WithAlgorithm(AlgMSSinglePath); the
// result satisfies PathCFPQResult. MultiSourceSinglePath remains for
// callers that need the concrete MSSinglePathResult.
func MultiSourceSinglePath(g *Graph, w *WCNF, src *VertexSet, opts ...Option) (*MSSinglePathResult, error) {
	return cfpq.MultiSourceSinglePath(g, w, src, opts...)
}

// Word returns the label word of an extracted path.
func Word(steps []PathStep) []string { return cfpq.Word(steps) }

// AllPairsSemiNaive is AllPairs with semi-naive (delta) iteration; it
// wins when the fixpoint runs many rounds (dense, deep hierarchies).
//
// Deprecated: use EvalCFPQ with WithAlgorithm(AlgSemiNaive).
func AllPairsSemiNaive(g *Graph, w *WCNF, opts ...Option) (*Result, error) {
	return cfpq.AllPairsSemiNaive(g, w, opts...)
}

// Worklist runs the non-linear-algebra CFL-reachability baseline.
//
// Deprecated: use EvalCFPQ with WithAlgorithm(AlgWorklist).
func Worklist(g *Graph, w *WCNF, opts ...Option) (*Result, error) {
	return cfpq.Worklist(g, w, opts...)
}

// CompileRegex compiles a regular path query ("subClassOf+ type?").
func CompileRegex(src string) (*NFA, error) { return rpq.CompileRegex(src) }

// EvalRPQ answers a multiple-source regular path query, compiling the
// query string and dispatching to the engine selected by WithEngine
// (minimized DFA by default). It is the one entry point behind the
// library's four RPQ engines:
//
//	reach, err := mscfpq.EvalRPQ(g, "subClassOf+", src)                     // minimized DFA
//	reach, err := mscfpq.EvalRPQ(g, "subClassOf+", src,
//		mscfpq.WithEngine(mscfpq.EngineTensor))                             // Kronecker RSM
func EvalRPQ(g *Graph, query string, src *VertexSet, opts ...Option) (*BoolMatrix, error) {
	return rpq.Eval(g, query, src, opts...)
}

// EvalRegex answers a multiple-source regular path query with pair
// semantics through the compiled NFA (see EvalRPQ for the unified
// engine-selecting entry point).
func EvalRegex(g *Graph, n *NFA, src *VertexSet, opts ...Option) (*BoolMatrix, error) {
	return rpq.EvalPairs(g, n, src, opts...)
}

// RegexToGrammar reduces a regular query to a context-free grammar so
// the CFPQ engine can evaluate it.
func RegexToGrammar(n *NFA) *Grammar { return rpq.ToGrammar(n) }

// Determinize builds the minimized DFA of a regular path query; answer
// it with EvalRegexDFA (the fastest RPQ engine in the library).
func Determinize(n *NFA) *DFA { return rpq.Determinize(n).Minimize() }

// EvalRegexDFA answers a multiple-source regular path query through a
// deterministic automaton.
func EvalRegexDFA(g *Graph, d *DFA, src *VertexSet, opts ...Option) (*BoolMatrix, error) {
	return rpq.EvalPairsDFA(g, d, src, opts...)
}

// NewRSM builds the recursive state machine of a grammar for the
// tensor (Kronecker product) CFPQ algorithm.
func NewRSM(g *Grammar) (*RSM, error) { return rsm.FromGrammar(g) }

// NewDB creates an empty graph database.
func NewDB() *DB { return gdb.New() }

// NewServer wraps a database in a RESP server.
func NewServer(db *DB) *Server { return resp.NewServer(db) }

// Dial connects a client to a running server.
func Dial(addr string) (*Client, error) { return resp.Dial(addr) }

// Dataset returns the registry of synthetic analogs of the paper's
// evaluation graphs (Table 1).
func Dataset() []DatasetSpec { return dataset.Registry() }

// GenerateDataset materializes one analog by name, scaled by f.
func GenerateDataset(name string, f float64) (*Graph, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return dataset.Generate(dataset.Scaled(spec, f)), nil
}
