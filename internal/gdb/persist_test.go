package gdb

import (
	"strings"
	"testing"

	"mscfpq/internal/cypher"
	"mscfpq/internal/graph"
)

func TestStoreRoundTrip(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	g.AddVertexLabel(0, "Person")
	s := NewGraphStore(g)
	s.SetProp(0, "name", cypher.Value{Str: "Ann O'Hara with spaces"})
	s.SetProp(0, "age", cypher.Value{Int: 41, IsInt: true})
	s.SetProp(2, "name", cypher.Value{Str: "multi\nline"})

	var b strings.Builder
	if err := WriteStore(&b, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadStore: %v\ndump:\n%s", err, b.String())
	}
	if !back.Graph().HasEdge(0, "a", 1) || !back.Graph().HasVertexLabel(0, "Person") {
		t.Fatal("graph content lost")
	}
	for _, check := range []struct {
		v   int
		key string
		val cypher.Value
	}{
		{0, "name", cypher.Value{Str: "Ann O'Hara with spaces"}},
		{0, "age", cypher.Value{Int: 41, IsInt: true}},
		{2, "name", cypher.Value{Str: "multi\nline"}},
	} {
		if !back.PropEquals(check.v, check.key, check.val) {
			t.Fatalf("prop (%d,%s) lost", check.v, check.key)
		}
	}
}

func TestDumpRestoreThroughDB(t *testing.T) {
	db := New()
	if _, err := db.Query("g", `CREATE (a:N {name: 'x'})-[:e]->(b:N)`); err != nil {
		t.Fatal(err)
	}
	dump, err := db.Dump("g")
	if err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.Restore("copy", dump); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query("copy", `MATCH (v:N)-[:e]->(u) WHERE v.name = 'x' RETURN v, u`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("restored query: %v rows=%v", err, res)
	}
	if _, err := db.Dump("missing"); err == nil {
		t.Fatal("expected error for missing graph")
	}
}

func TestReadStoreErrors(t *testing.T) {
	cases := []string{
		"prop x name s \"v\"",                   // bad vertex
		"order 2\nprop 5 name s \"v\"",          // out of range
		"order 2\nprop 0 name i abc",            // bad int
		"order 2\nprop 0 name s unquoted space", // bad quoting
		"order 2\nprop 0 name z 1",              // unknown kind
		"order 2\nprop 0 name",                  // short line
		"0 a",                                   // bad graph body
	}
	for _, src := range cases {
		if _, err := ReadStore(strings.NewReader(src)); err == nil {
			t.Errorf("ReadStore(%q): expected error", src)
		}
	}
}

func TestDumpDeterministic(t *testing.T) {
	db := New()
	if _, err := db.Query("g", `CREATE (a:N {z: 1, a: 2, m: 'x'})`); err != nil {
		t.Fatal(err)
	}
	d1, err := db.Dump("g")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := db.Dump("g")
	if d1 != d2 {
		t.Fatal("dump not deterministic")
	}
}
