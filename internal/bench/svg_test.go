package bench

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"time"
)

func sampleSeries() FigureSeries {
	return FigureSeries{
		Graph: "core",
		Query: "G1",
		Points: []FigurePoint{
			{ChunkSize: 1, Chunks: 8, MSMean: 500 * time.Microsecond, SmartMean: 800 * time.Microsecond},
			{ChunkSize: 10, Chunks: 8, MSMean: 2 * time.Millisecond, SmartMean: 1 * time.Millisecond},
			{ChunkSize: 100, Chunks: 8, MSMean: 9 * time.Millisecond, SmartMean: 3 * time.Millisecond},
		},
	}
}

func TestWriteFigureSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureSVG(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", "polyline", "Algorithm 2 (fresh)", "Algorithm 3 (cached index)", "core"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two polylines (one per series), three markers each.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("markers = %d", got)
	}
}

func TestWriteFigureSVGEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureSVG(&buf, FigureSeries{Graph: "x", Query: "q"}); err == nil {
		t.Fatal("expected error for empty series")
	}
}

func TestWriteFigureSVGSinglePoint(t *testing.T) {
	s := sampleSeries()
	s.Points = s.Points[:1]
	var buf bytes.Buffer
	if err := WriteFigureSVG(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG output")
	}
}
