package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// WriteFigureSVG renders one sweep series as a log-log line chart
// comparing Algorithm 2 (fresh) against Algorithm 3 (cached index) —
// the shape of the paper's Figures 3-8. Pure stdlib: the SVG is
// assembled by hand.
func WriteFigureSVG(w io.Writer, s FigureSeries) error {
	if len(s.Points) == 0 {
		return fmt.Errorf("bench: series %s/%s has no points", s.Graph, s.Query)
	}
	const (
		width, height            = 640, 420
		left, right, top, bottom = 70, 20, 40, 50
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	// Ranges (log10) over both series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	yVal := func(d time.Duration) float64 {
		v := float64(d.Microseconds()) / 1000.0
		if v < 0.001 {
			v = 0.001
		}
		return v
	}
	for _, p := range s.Points {
		x := float64(p.ChunkSize)
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		for _, v := range []float64{yVal(p.MSMean), yVal(p.SmartMean)} {
			minY, maxY = math.Min(minY, v), math.Max(maxY, v)
		}
	}
	lx := func(x float64) float64 {
		if maxX == minX {
			return float64(left) + plotW/2
		}
		return float64(left) + plotW*(math.Log10(x)-math.Log10(minX))/(math.Log10(maxX)-math.Log10(minX))
	}
	ly := func(y float64) float64 {
		if maxY == minY {
			return float64(top) + plotH/2
		}
		return float64(top) + plotH*(1-(math.Log10(y)-math.Log10(minY))/(math.Log10(maxY)-math.Log10(minY)))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16">%s — query %s (mean ms per chunk)</text>`+"\n",
		left, xmlEscape(s.Graph), xmlEscape(s.Query))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, height-bottom, width-right, height-bottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top, left, height-bottom)
	// X ticks at each chunk size.
	for _, p := range s.Points {
		x := lx(float64(p.ChunkSize))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-bottom, x, height-bottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n",
			x, height-bottom+20, p.ChunkSize)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">source chunk size (log)</text>`+"\n",
		left+int(plotW/2), height-10)
	// Y ticks at decades.
	for d := math.Floor(math.Log10(minY)); d <= math.Ceil(math.Log10(maxY)); d++ {
		v := math.Pow(10, d)
		if v < minY || v > maxY {
			continue
		}
		y := ly(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			left, y, width-right, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%g</text>`+"\n",
			left-6, y+4, v)
	}
	// Series polylines.
	series := []struct {
		name  string
		color string
		pick  func(FigurePoint) float64
	}{
		{"Algorithm 2 (fresh)", "#c0392b", func(p FigurePoint) float64 { return yVal(p.MSMean) }},
		{"Algorithm 3 (cached index)", "#2471a3", func(p FigurePoint) float64 { return yVal(p.SmartMean) }},
	}
	for si, sr := range series {
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", lx(float64(p.ChunkSize)), ly(sr.pick(p))))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			sr.color, strings.Join(pts, " "))
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				lx(float64(p.ChunkSize)), ly(sr.pick(p)), sr.color)
		}
		// Legend.
		yLeg := top + 10 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-right-190, yLeg, width-right-170, yLeg, sr.color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			width-right-164, yLeg+4, xmlEscape(sr.name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
