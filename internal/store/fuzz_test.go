package store

import (
	"fmt"
	"math/rand"
	"testing"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

// alphaRename renames every nonterminal of g injectively (ρ0, ρ1, ...
// by first appearance), preserving production order and terminals — a
// semantically identical grammar that must hash identically.
func alphaRename(g *grammar.Grammar) *grammar.Grammar {
	ren := map[string]string{}
	name := func(nt string) string {
		if r, ok := ren[nt]; ok {
			return r
		}
		r := fmt.Sprintf("ρ%d", len(ren))
		ren[nt] = r
		return r
	}
	out := &grammar.Grammar{}
	for _, p := range g.Prods {
		np := grammar.Production{LHS: name(p.LHS)}
		for _, s := range p.RHS {
			if s.Term {
				np.RHS = append(np.RHS, s)
			} else {
				np.RHS = append(np.RHS, grammar.N(name(s.Name)))
			}
		}
		out.Prods = append(out.Prods, np)
	}
	out.Start = name(g.Start)
	return out
}

// FuzzCacheKey checks the canonicalization properties of the cache
// key (ISSUE 7): semantically identical inputs — α-renamed grammars,
// permuted/duplicated source sets — must map to the SAME key, and
// distinct versions, store incarnations, or source sets must NEVER
// collide.
func FuzzCacheKey(f *testing.F) {
	f.Add("S -> a S b | a b", uint64(3), uint64(2), int64(42))
	f.Add("S -> S S | a |", uint64(0), uint64(1), int64(7))
	f.Add("A -> b A | B\nB -> c", uint64(9), uint64(90), int64(1))
	f.Add("S -> a b c d S | a", uint64(1), uint64(5), int64(99))
	f.Fuzz(func(t *testing.T, gtext string, version, deltaV uint64, seed int64) {
		g, err := grammar.ParseString(gtext)
		if err != nil {
			t.Skip()
		}
		w, err := grammar.ToWCNF(g)
		if err != nil {
			t.Skip()
		}
		w2, err := grammar.ToWCNF(alphaRename(g))
		if err != nil {
			t.Fatalf("α-renamed grammar stopped normalizing: %v", err)
		}
		if GrammarHash(w) != GrammarHash(w2) {
			t.Fatalf("α-renaming changed the grammar hash\noriginal: %s\nrenamed:  %s", w, w2)
		}

		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64) + 2
		ids := make([]int, rng.Intn(8))
		for i := range ids {
			ids[i] = rng.Intn(n)
		}
		src := matrix.NewVectorFromIndices(n, ids)
		// Permute and duplicate the id list; the canonical vector — and
		// hence the key — must not change.
		scrambled := append([]int(nil), ids...)
		rng.Shuffle(len(scrambled), func(i, j int) { scrambled[i], scrambled[j] = scrambled[j], scrambled[i] })
		scrambled = append(scrambled, ids...)
		srcPerm := matrix.NewVectorFromIndices(n, scrambled)

		const sid = 11
		alg := exec.AlgMultiSource
		k := EvalKey(sid, version, w, src, alg)
		if kp := EvalKey(sid, version, w2, srcPerm, alg); kp != k {
			t.Fatalf("equivalent query produced a different key\n%s\n%s", k, kp)
		}

		// Distinct versions never collide.
		v2 := version + deltaV + 1 // deltaV may be 0; +1 forces distinctness
		if k2 := EvalKey(sid, v2, w, src, alg); k2 == k {
			t.Fatalf("versions %d and %d collide on key %s", version, v2, k)
		}
		if rk, rk2 := ResultKey(sid, version, gtext), ResultKey(sid, v2, gtext); rk == rk2 {
			t.Fatalf("result keys collide across versions")
		}
		// Distinct store incarnations never collide.
		if k2 := EvalKey(sid+1, version, w, src, alg); k2 == k {
			t.Fatalf("store ids collide on key %s", k)
		}
		// A strictly different source set is a different key.
		extra := -1
		for v := 0; v < n; v++ {
			if !src.Get(v) {
				extra = v
				break
			}
		}
		if extra >= 0 {
			grownSrc := matrix.NewVectorFromIndices(n, append(append([]int(nil), ids...), extra))
			if k2 := EvalKey(sid, version, w, grownSrc, alg); k2 == k {
				t.Fatalf("distinct source sets collide on key %s", k)
			}
		}
		// A different algorithm is a different key.
		if k2 := EvalKey(sid, version, w, src, exec.AlgMatrix); k2 == k {
			t.Fatalf("algorithms collide on key %s", k)
		}
	})
}
