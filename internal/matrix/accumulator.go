package matrix

import (
	"math/bits"
	"slices"
	"sync"
)

// accumulator gathers the union of sparse rows during multiplication.
// It keeps a bitset over columns plus the list of 64-bit words touched in
// the current round, so both accumulation and extraction cost time
// proportional to the touched region, not the full matrix width.
type accumulator struct {
	words   []uint64
	mark    []uint32 // epoch stamp per word; lazily resets words
	touched []uint32 // word indices dirtied this round
	epoch   uint32
}

// accPool recycles accumulators across multiplications. A fixpoint
// round allocates one accumulator per kernel call (and one per worker
// for the parallel kernels); the backing bitsets are by far the largest
// per-round allocation, so reusing them keeps the steady-state fixpoint
// loop allocation-free apart from the result rows themselves.
var accPool = sync.Pool{New: func() any { return &accumulator{} }}

// getAccumulator returns an accumulator sized for ncols columns, reusing
// a pooled one when its backing arrays are large enough. Callers must
// hand it back with putAccumulator when the multiplication finishes.
func getAccumulator(ncols int) *accumulator {
	a := accPool.Get().(*accumulator)
	a.resize(ncols)
	return a
}

// putAccumulator recycles a for later getAccumulator calls. The
// accumulator must no longer be used after being put.
func putAccumulator(a *accumulator) {
	accPool.Put(a)
}

// resize adapts the accumulator to a column count, keeping the backing
// arrays when their capacity suffices. The epoch survives reuse: stale
// stamps from earlier rounds are always strictly older than the current
// epoch, so the lazy word-reset logic stays sound without zeroing.
func (a *accumulator) resize(ncols int) {
	nwords := (ncols + 63) / 64
	a.touched = a.touched[:0]
	if cap(a.words) < nwords {
		a.words = make([]uint64, nwords)
		a.mark = make([]uint32, nwords)
		if a.epoch == 0 {
			a.epoch = 1
		}
		return
	}
	old := len(a.mark)
	a.words = a.words[:nwords]
	a.mark = a.mark[:nwords]
	// Words re-exposed by growing within capacity carry stamps from a
	// prior, wider use. Those stamps predate the current epoch — except
	// across an epoch wrap, whose explicit clear in reset() only covers
	// the then-visible region — so clear them defensively.
	for i := old; i < nwords; i++ {
		a.mark[i] = 0
	}
}

// reset prepares the accumulator for a new row.
func (a *accumulator) reset() {
	a.touched = a.touched[:0]
	a.epoch++
	if a.epoch == 0 { // stamp wrapped: clear marks explicitly
		for i := range a.mark {
			a.mark[i] = 0
		}
		a.epoch = 1
	}
}

// orRow ORs a sorted column-index row into the accumulator.
func (a *accumulator) orRow(row []uint32) {
	for _, c := range row {
		w := c >> 6
		if a.mark[w] != a.epoch {
			a.mark[w] = a.epoch
			a.words[w] = 0
			a.touched = append(a.touched, w)
		}
		a.words[w] |= 1 << (c & 63)
	}
}

// contains reports whether column c is set in the current round.
func (a *accumulator) contains(c uint32) bool {
	w := c >> 6
	return a.mark[w] == a.epoch && a.words[w]&(1<<(c&63)) != 0
}

// extract appends the accumulated columns, sorted, to dst and returns it.
func (a *accumulator) extract(dst []uint32) []uint32 {
	if len(a.touched) == 0 {
		return dst
	}
	slices.Sort(a.touched)
	for _, w := range a.touched {
		word := a.words[w]
		base := w << 6
		for word != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// count returns the number of accumulated columns without extracting.
func (a *accumulator) count() int {
	n := 0
	for _, w := range a.touched {
		n += bits.OnesCount64(a.words[w])
	}
	return n
}
