//go:build !slow

package difftest

// Short-mode sizes: the standing tier-1.5 pass that `make diff-test`
// (and `make check`) runs under -race. Build with -tags=slow for the
// deep sweep.
const (
	cfpqInstances      = 120 // seeded (graph, grammar, source-set) cases
	rpqInstances       = 80  // seeded (graph, regex, source-set) cases
	metamorphicCases   = 40  // instances per metamorphic invariant
	maxGraphVertices   = 16
	governedBudgetSpan = 40 // budgets sampled from [1, span]
)
