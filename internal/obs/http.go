package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Handler serves a registry snapshot as a JSON object (expvar-style:
// flat name → value, keys sorted), for the gsql-server -metrics-addr
// endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, err := MarshalSnapshot(r.Snapshot())
		if err != nil {
			http.Error(w, "metrics encode: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if _, err := w.Write(body); err != nil {
			// Client went away mid-response; nothing actionable.
			return
		}
	})
}

// MarshalSnapshot renders a snapshot as a JSON object with sorted keys
// (encoding/json would also sort a map, but building the body by hand
// keeps ordering explicit for detrange and the -metrics-dump flag).
func MarshalSnapshot(s Snapshot) ([]byte, error) {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := []byte("{\n")
	for i, k := range keys {
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, fmt.Errorf("marshal metrics key %q: %w", k, err)
		}
		out = append(out, "  "...)
		out = append(out, kb...)
		out = append(out, fmt.Sprintf(": %d", s[k])...)
		if i < len(keys)-1 {
			out = append(out, ',')
		}
		out = append(out, '\n')
	}
	out = append(out, "}\n"...)
	return out, nil
}
