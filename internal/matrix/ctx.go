package matrix

import (
	"context"
	"fmt"
)

// ctxCheckRows is the row-block granularity at which the context-aware
// kernels poll for cancellation. Small enough that even dense blocks
// finish in well under a millisecond on CI-class hardware, large enough
// that the ctx.Err() atomic load is amortized away (measured <2% on the
// E3–E8 sweep, see EXPERIMENTS.md).
const ctxCheckRows = 256

// MulCtx is Mul with cancellation: it checks ctx between row blocks and
// returns ctx.Err() as soon as the context is done, discarding the
// partial product.
func MulCtx(ctx context.Context, a, b *Bool) (*Bool, error) {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulCtx dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	out := NewBool(a.nrows, b.ncols)
	if a.nvals == 0 || b.nvals == 0 {
		return out, ctx.Err()
	}
	acc := getAccumulator(b.ncols)
	defer putAccumulator(acc)
	for lo := 0; lo < a.nrows; lo += ctxCheckRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + ctxCheckRows
		if hi > a.nrows {
			hi = a.nrows
		}
		mulRowsInto(a, b, out, lo, hi, acc)
	}
	return out, nil
}

// MulParCtx is MulPar with cancellation: every worker checks ctx
// between row blocks; the first error wins and the partial product is
// discarded.
func MulParCtx(ctx context.Context, a, b *Bool, workers int) (*Bool, error) {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulParCtx dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	if workers <= 1 || a.nrows < 2*workers {
		return MulCtx(ctx, a, b)
	}
	out := NewBool(a.nrows, b.ncols)
	if a.nvals == 0 || b.nvals == 0 {
		return out, ctx.Err()
	}
	type result struct {
		n   int
		err error
	}
	done := make(chan result, workers)
	step := (a.nrows + workers - 1) / workers
	nblocks := 0
	for lo := 0; lo < a.nrows; lo += step {
		hi := lo + step
		if hi > a.nrows {
			hi = a.nrows
		}
		nblocks++
		go func(lo, hi int) {
			acc := getAccumulator(b.ncols)
			defer putAccumulator(acc)
			n := 0
			for blo := lo; blo < hi; blo += ctxCheckRows {
				if err := ctx.Err(); err != nil {
					done <- result{err: err}
					return
				}
				bhi := blo + ctxCheckRows
				if bhi > hi {
					bhi = hi
				}
				for i := blo; i < bhi; i++ {
					ra := a.rows[i]
					if len(ra) == 0 {
						continue
					}
					acc.reset()
					for _, k := range ra {
						acc.orRow(b.rows[k])
					}
					row := acc.extract(make([]uint32, 0, acc.count()))
					if len(row) > 0 {
						out.rows[i] = row // disjoint row ranges: no locking needed
						n += len(row)
					}
				}
			}
			done <- result{n: n}
		}(lo, hi)
	}
	total := 0
	var firstErr error
	for i := 0; i < nblocks; i++ {
		r := <-done
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		total += r.n
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out.nvals = total
	return out, nil
}

// MulHybridCtx is MulHybrid with cancellation: both the CSR and the
// bitset path poll ctx between row blocks.
func MulHybridCtx(ctx context.Context, a, b *Bool) (*Bool, error) {
	if b.Density() >= hybridDensityThreshold {
		d, err := mulBoolDenseCtx(ctx, a, FromBool(b))
		if err != nil {
			return nil, err
		}
		return d.ToBool(), nil
	}
	return MulCtx(ctx, a, b)
}

// mulBoolDenseCtx is MulBoolDense polling ctx between row blocks.
func mulBoolDenseCtx(ctx context.Context, a *Bool, b *Dense) (*Dense, error) {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulBoolDense dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	out := NewDense(a.nrows, b.ncols)
	for lo := 0; lo < a.nrows; lo += ctxCheckRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + ctxCheckRows
		if hi > a.nrows {
			hi = a.nrows
		}
		for i := lo; i < hi; i++ {
			row := a.rows[i]
			if len(row) == 0 {
				continue
			}
			dst := out.words[i*out.wpr : (i+1)*out.wpr]
			for _, k := range row {
				src := b.words[int(k)*b.wpr : (int(k)+1)*b.wpr]
				for w := range dst {
					dst[w] |= src[w]
				}
			}
		}
	}
	return out, nil
}

// TransitiveClosureCtx is TransitiveClosure with cancellation between
// (and inside) the squaring rounds.
func TransitiveClosureCtx(ctx context.Context, a *Bool) (*Bool, error) {
	if a.nrows != a.ncols {
		panic(fmt.Sprintf("matrix: TransitiveClosureCtx of non-square %dx%d", a.nrows, a.ncols))
	}
	m := a.Clone()
	for {
		prod, err := MulCtx(ctx, m, m)
		if err != nil {
			return nil, err
		}
		if !AddInPlace(m, prod) {
			return m, nil
		}
	}
}
