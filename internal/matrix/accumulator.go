package matrix

import (
	"math/bits"
	"sort"
)

// accumulator gathers the union of sparse rows during multiplication.
// It keeps a bitset over columns plus the list of 64-bit words touched in
// the current round, so both accumulation and extraction cost time
// proportional to the touched region, not the full matrix width.
type accumulator struct {
	words   []uint64
	mark    []uint32 // epoch stamp per word; lazily resets words
	touched []uint32 // word indices dirtied this round
	epoch   uint32
}

func newAccumulator(ncols int) *accumulator {
	nwords := (ncols + 63) / 64
	return &accumulator{
		words: make([]uint64, nwords),
		mark:  make([]uint32, nwords),
		epoch: 1,
	}
}

// reset prepares the accumulator for a new row.
func (a *accumulator) reset() {
	a.touched = a.touched[:0]
	a.epoch++
	if a.epoch == 0 { // stamp wrapped: clear marks explicitly
		for i := range a.mark {
			a.mark[i] = 0
		}
		a.epoch = 1
	}
}

// orRow ORs a sorted column-index row into the accumulator.
func (a *accumulator) orRow(row []uint32) {
	for _, c := range row {
		w := c >> 6
		if a.mark[w] != a.epoch {
			a.mark[w] = a.epoch
			a.words[w] = 0
			a.touched = append(a.touched, w)
		}
		a.words[w] |= 1 << (c & 63)
	}
}

// contains reports whether column c is set in the current round.
func (a *accumulator) contains(c uint32) bool {
	w := c >> 6
	return a.mark[w] == a.epoch && a.words[w]&(1<<(c&63)) != 0
}

// extract appends the accumulated columns, sorted, to dst and returns it.
func (a *accumulator) extract(dst []uint32) []uint32 {
	if len(a.touched) == 0 {
		return dst
	}
	sort.Slice(a.touched, func(i, j int) bool { return a.touched[i] < a.touched[j] })
	for _, w := range a.touched {
		word := a.words[w]
		base := w << 6
		for word != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// count returns the number of accumulated columns without extracting.
func (a *accumulator) count() int {
	n := 0
	for _, w := range a.touched {
		n += bits.OnesCount64(a.words[w])
	}
	return n
}
