package detrange_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, detrange.Analyzer, "detpos", "detneg", "obsrender")
}
