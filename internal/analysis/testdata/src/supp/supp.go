// Package supp exercises the //lint:ignore suppression policy against
// a test analyzer that flags every call.
package supp

func mark() {}

func trailing() {
	mark() //lint:ignore callmark calls are intentionally flagged in this fixture
}

func standalone() {
	//lint:ignore callmark the comment above a line covers it too
	mark()
}

func noReason() {
	//lint:ignore callmark
	mark()
}

func otherAnalyzer() {
	//lint:ignore othercheck a reason aimed at a different analyzer
	mark()
}

func bare() {
	mark()
}
