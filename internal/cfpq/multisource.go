package cfpq

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// MSResult extends Result with the source matrices accumulated by the
// multiple-source algorithm: Src[A] is the diagonal matrix of vertices
// for which paths deriving from A were requested (directly or through
// the propagation of Algorithm 2 lines 13-14).
type MSResult struct {
	*Result
	Src []*matrix.Bool // per nonterminal: TSrc^A
	// Sources is the original query source set.
	Sources *matrix.Vector
}

// Answer returns the start-relation pairs restricted to the queried
// sources — the multiple-source CFPQ answer. The raw T^S matrix also
// contains the simple-rule seeds for all vertices (Algorithm 2 lines
// 6-8), so restriction is required for a sound answer.
func (r *MSResult) Answer() *matrix.Bool {
	return matrix.ExtractRows(r.Start(), r.Sources)
}

// MultiSource evaluates the context-free path query for paths starting
// at the vertices of src, using the paper's Algorithm 2. Compared to
// AllPairs, every binary-rule step first filters the left operand by the
// current source matrix:
//
//	M     = TSrc^A * T^B
//	T^A  += M * T^C
//	TSrc^B += TSrc^A
//	TSrc^C += getDst(M)
//
// so only rows relevant to the requested sources are ever computed.
func MultiSource(g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, opts ...Option) (*MSResult, error) {
	if src == nil {
		return nil, fmt.Errorf("cfpq: nil source vector")
	}
	return MultiSourceFrom(g, w, map[int]*matrix.Vector{w.Start: src}, opts...)
}

// MultiSourceFrom is the generalization of Algorithm 2 used by the
// database layer (Section 4.3.2): it accepts source sets for arbitrary
// nonterminals — the dependencies of a query operation — instead of only
// the start symbol. The returned Sources field is the start
// nonterminal's requested set (empty if none was given).
func MultiSourceFrom(g *graph.Graph, w *grammar.WCNF, srcByNT map[int]*matrix.Vector, opts ...Option) (*MSResult, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	run, cancel := exec.Build(opts).Start()
	defer cancel()

	r := &MSResult{Result: newResult(w, n), Sources: matrix.NewVector(n)}
	r.Src = make([]*matrix.Bool, w.NumNonterms())
	for a := range r.Src {
		r.Src[a] = matrix.NewBool(n, n)
	}
	// Input matrix initialization (lines 4-5), generalized to requests
	// for any nonterminal.
	for a, src := range srcByNT {
		if a < 0 || a >= w.NumNonterms() {
			return nil, fmt.Errorf("cfpq: source nonterminal id %d out of range", a)
		}
		if src == nil || src.Size() != n {
			return nil, fmt.Errorf("cfpq: source vector size mismatch (graph has %d vertices)", n)
		}
		matrix.AddInPlace(r.Src[a], src.Diag())
	}
	if src, ok := srcByNT[w.Start]; ok {
		r.Sources = src.Clone()
	}
	// Simple rules initialization (lines 6-8) plus eps diagonals for the
	// weak normal form.
	initSimpleRules(r.Result, g)
	initEpsRules(r.Result, n)

	for changed := true; changed; {
		if err := run.Err(); err != nil {
			return nil, err
		}
		changed = false
		r.Rounds++
		span := run.StartSpan(obs.SpanRound(r.Rounds))
		for _, rule := range w.BinRules {
			run.ObserveFrontier(r.Src[rule.A].NVals())
			m, err := run.Mul(r.Src[rule.A], r.T[rule.B])
			if err != nil {
				span.End()
				return nil, err
			}
			prod, err := run.Mul(m, r.T[rule.C])
			if err != nil {
				span.End()
				return nil, err
			}
			if run.Add(r.T[rule.A], prod) {
				changed = true
			}
			if run.Add(r.Src[rule.B], r.Src[rule.A]) {
				changed = true
			}
			if run.Add(r.Src[rule.C], matrix.GetDst(m)) {
				changed = true
			}
		}
		span.End()
	}
	obs.CFPQRounds.Observe(int64(r.Rounds))
	r.Work = run.Spent()
	return r, nil
}
