package gdb

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
	"mscfpq/internal/obs"
)

// Policy is the server-side query governance configuration: limits
// applied to every statement unless the statement overrides them (a
// Cypher TIMEOUT clause tightens or loosens the timeout for one query).
type Policy struct {
	// DefaultTimeout bounds each query's wall-clock execution; 0 means
	// no default (a per-query TIMEOUT clause still applies).
	DefaultTimeout time.Duration
	// MaxWork bounds each query's work budget (relation entries
	// produced across fixpoint iterations); 0 means unlimited.
	MaxWork int64
	// SlowQuery is the duration at or above which a completed query is
	// written to the slow-query log; 0 disables slow logging (aborted
	// queries are still logged).
	SlowQuery time.Duration
	// MaxConcurrent bounds the number of commands the RESP server
	// executes at once; excess commands are shed with a BUSY error
	// instead of queueing unboundedly. 0 means unlimited.
	MaxConcurrent int
	// SaveInterval is the auto-save period of a durable database
	// (Open): a snapshot is cut and the journal rotated this often.
	// 0 disables auto-saving; explicit Save/GRAPH.SAVE still works.
	SaveInterval time.Duration
	// Log receives structured slow-query and aborted-query lines; nil
	// disables logging.
	Log *log.Logger
}

// SetPolicy installs the governance policy for subsequent queries.
func (db *DB) SetPolicy(p Policy) {
	db.polMu.Lock()
	db.policy = p
	db.polMu.Unlock()
	db.kickAutoSaver()
}

// Policy returns the current governance policy.
func (db *DB) Policy() Policy {
	db.polMu.RLock()
	defer db.polMu.RUnlock()
	return db.policy
}

// QueryContext parses and executes a statement against the named graph
// under the caller's context and the database policy. The effective
// timeout is the statement's TIMEOUT clause if present, the policy
// default otherwise; the policy's work budget always applies. Queries
// aborted by the governor return context.Canceled,
// context.DeadlineExceeded, or exec.ErrBudget.
func (db *DB) QueryContext(ctx context.Context, name, src string) (*QueryResult, error) {
	parseStart := time.Now()
	q, err := cypher.Parse(src)
	parseDur := time.Since(parseStart)
	if err != nil {
		return nil, err
	}
	pol := db.Policy()
	if q.Create != nil {
		if q.Profile {
			return nil, fmt.Errorf("gdb: PROFILE requires a MATCH query")
		}
		// Writes are single-pass over the pattern list — no fixpoint to
		// govern; honor an already-cancelled context, journal the
		// statement (durable databases fsync before acknowledging), and
		// run.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var res *QueryResult
		var applyErr error
		err := db.commit(journalOp{op: opCypher, name: name, arg: src}, func() {
			res, applyErr = db.runCreate(name, q)
		})
		if err != nil {
			return nil, err
		}
		obs.GdbWrites.Inc()
		return res, applyErr
	}
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	timeout := pol.DefaultTimeout
	if q.TimeoutMS > 0 {
		timeout = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	var trace *obs.Trace
	if q.Profile {
		trace = obs.NewTrace("query")
		trace.AddSpan("parse", parseDur)
	}
	run, cancel := exec.Options{Ctx: ctx, Timeout: timeout, Budget: pol.MaxWork, Trace: trace}.Start()
	defer cancel()

	start := time.Now()
	res, err := s.runMatch(q, run)
	elapsed := time.Since(start)
	trace.Close()

	obs.GdbQueries.Inc()
	obs.GdbQueryLatencyUS.Observe(elapsed.Microseconds())
	exec.RecordOutcome(err)

	aborted := err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, exec.ErrBudget))
	if aborted || (pol.SlowQuery > 0 && elapsed >= pol.SlowQuery) {
		status := "slow"
		if aborted {
			status = "aborted"
		}
		obs.GdbSlowQueries.Inc()
		entry := obs.SlowLogEntry{
			Time: start, Graph: name, Query: src,
			Duration: elapsed, Status: status, Work: run.Spent(),
		}
		if err != nil {
			entry.Err = err.Error()
		}
		db.slowLog.Add(entry)
		if pol.Log != nil {
			pol.Log.Printf("slow-query status=%s graph=%q duration=%s timeout=%s work=%d budget=%d err=%v query=%q",
				status, name, elapsed.Round(time.Microsecond), timeout, run.Spent(), pol.MaxWork, err, src)
		}
	}
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Profile = trace.Render()
	}
	return res, nil
}
