// Package obs is the fixture catalog with deliberate drift: a dead
// metric, a dead span constant, and an instrument outside any layer.
package obs

type Counter struct{}

func (c *Counter) Inc() {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

var Default = &Registry{}

const (
	LayerKernel = "kernel"
	LayerBatch  = "batch"
)

var (
	KernelOps   = Default.Counter("kernel.mul.ops")
	BatchGroups = Default.Counter("batch.groups")
	BatchDead   = Default.Counter("batch.dead.count") // want `catalog entry "batch\.dead\.count" is never referenced`
	DeadMetric  = Default.Counter("kernel.dead.ops")  // want `catalog entry "kernel\.dead\.ops" is never referenced`
	BadLayer    = Default.Counter("bogus.mul.ops")    // want `instrument "bogus\.mul\.ops" has no declared layer`
)

const (
	SpanQuery     = "query"
	SpanBatchWait = "batch.wait"
	SpanDead      = "dead" // want `catalog entry "dead" is never referenced`
)

type Trace struct{}

func NewTrace(name string) *Trace { return &Trace{} }

func (t *Trace) Start(name string) {}
