package mscfpq

// One testing.B benchmark per table/figure of the paper's evaluation
// (experiment index in DESIGN.md §3). Each delegates to the shared
// harness in internal/bench at a reduced scale so `go test -bench=.`
// completes in minutes; `cmd/benchrunner` runs the full-size sweeps and
// writes the tables EXPERIMENTS.md records.

import (
	"testing"

	"mscfpq/internal/bench"
	"mscfpq/internal/cfpq"
	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

func benchConfig() bench.Config {
	cfg := bench.QuickConfig()
	cfg.MaxChunks = 2
	return cfg
}

// BenchmarkTable1Stats regenerates the dataset statistics (E1, Table 1).
func BenchmarkTable1Stats(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SinglePath measures single-path index construction and
// witness extraction (E2, Figure 2).
func BenchmarkFig2SinglePath(b *testing.B) {
	cfg := benchConfig()
	cfg.Graphs = []string{"core", "pathways", "geospecies"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2(cfg, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3to8MultiSource runs the chunked multiple-source sweep
// comparing Algorithm 2 with Algorithm 3 (E3-E8, Figures 3-8).
func BenchmarkFig3to8MultiSource(b *testing.B) {
	cfg := benchConfig()
	cfg.Graphs = []string{"core", "pathways", "geospecies"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figures(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBaselines compares Algorithm 2 with the all-pairs
// filter and the worklist baseline (E9).
func BenchmarkAblationBaselines(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(cfg, "core", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullStackQuery measures end-to-end GRAPH.QUERY evaluation
// against the raw algorithm (E10, Section 4.4).
func BenchmarkFullStackQuery(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.FullStack(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPQUnification compares the RPQ engines (E11, future work).
func BenchmarkRPQUnification(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RPQUnification(cfg, "core", "subClassOf+", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the algorithm kernels on a fixed mid-size input,
// for regression tracking of the hot paths behind every experiment.

func benchInput(b *testing.B) (*Graph, *WCNF, *VertexSet) {
	b.Helper()
	g, err := GenerateDataset("core", 1)
	if err != nil {
		b.Fatal(err)
	}
	w, err := ToWCNF(G2())
	if err != nil {
		b.Fatal(err)
	}
	src := matrix.NewVector(g.NumVertices())
	for v := 0; v < 20; v++ {
		src.Set(v)
	}
	return g, w, src
}

func BenchmarkKernelAllPairs(b *testing.B) {
	g, w, _ := benchInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfpq.AllPairs(g, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelAllPairsSemiNaive(b *testing.B) {
	g, w, _ := benchInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfpq.AllPairsSemiNaive(g, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelMultiSource(b *testing.B) {
	g, w, src := benchInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfpq.MultiSource(g, w, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSmartWarm(b *testing.B) {
	g, w, src := benchInput(b)
	idx, err := cfpq.NewIndex(g, w)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := idx.MultiSourceSmart(src); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.MultiSourceSmart(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelWorklistMS(b *testing.B) {
	g, w, src := benchInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfpq.WorklistMultiSource(g, w, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGrammarNormalize(b *testing.B) {
	g := grammar.G1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := grammar.ToWCNF(g); err != nil {
			b.Fatal(err)
		}
	}
}
