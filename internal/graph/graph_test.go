package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mscfpq/internal/matrix"
)

// paperGraph builds the example graph D of Figure 1: six vertices,
// edges a,b,c,d, vertex labels x,y. Vertices are 0-based here (the
// paper numbers them 1-6).
func paperGraph() *Graph {
	g := New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(1, "b", 2)
	g.AddEdge(1, "b", 5)
	g.AddEdge(2, "d", 4)
	g.AddEdge(3, "c", 2)
	g.AddEdge(4, "c", 3)
	g.AddEdge(4, "d", 5)
	g.AddEdge(5, "d", 4)
	g.AddVertexLabel(0, "x")
	g.AddVertexLabel(2, "x")
	g.AddVertexLabel(2, "y")
	g.AddVertexLabel(5, "y")
	return g
}

func TestAddAndQueryEdges(t *testing.T) {
	g := paperGraph()
	if g.NumVertices() != 6 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 9 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.HasEdge(1, "b", 5) || g.HasEdge(5, "b", 1) {
		t.Fatal("HasEdge direction wrong")
	}
	if !g.HasEdge(5, "b_r", 1) {
		t.Fatal("inverse HasEdge failed")
	}
	if g.HasEdge(0, "zzz", 1) || g.HasEdge(-1, "a", 0) || g.HasEdge(0, "a", 99) {
		t.Fatal("nonexistent edge reported")
	}
	g.AddEdge(1, "b", 5) // duplicate must not double count
	if g.NumEdges() != 9 {
		t.Fatalf("duplicate edge changed count to %d", g.NumEdges())
	}
	if got := g.EdgeLabels(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("labels = %v", got)
	}
	if g.EdgeCount("d") != 3 || g.EdgeCount("nope") != 0 {
		t.Fatal("EdgeCount wrong")
	}
}

func TestVertexLabels(t *testing.T) {
	g := paperGraph()
	if !g.HasVertexLabel(2, "x") || !g.HasVertexLabel(2, "y") || g.HasVertexLabel(1, "x") {
		t.Fatal("vertex labels wrong")
	}
	if got := g.VertexLabels(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("vertex labels = %v", got)
	}
	vm := g.VertexMatrix("y")
	if vm.NVals() != 2 || !vm.Get(2, 2) || !vm.Get(5, 5) {
		t.Fatalf("vertex matrix wrong:\n%v", vm)
	}
	if g.VertexSet("none").NVals() != 0 {
		t.Fatal("unknown vertex label must be empty")
	}
}

func TestEdgeMatrixAndInverse(t *testing.T) {
	g := paperGraph()
	ea := g.EdgeMatrix("a")
	if ea.NVals() != 2 || !ea.Get(0, 1) || !ea.Get(1, 2) {
		t.Fatalf("E^a wrong:\n%v", ea)
	}
	inv := g.EdgeMatrix("a_r")
	if !inv.Equal(matrix.Transpose(ea)) {
		t.Fatal("inverse matrix is not the transpose")
	}
	// Cache must return identical contents on repeat and invalidate on edit.
	if !g.EdgeMatrix("a_r").Equal(inv) {
		t.Fatal("inverse cache inconsistent")
	}
	g.AddEdge(3, "a", 0)
	if !g.EdgeMatrix("a_r").Get(0, 3) {
		t.Fatal("inverse cache not invalidated by AddEdge")
	}
	if g.EdgeMatrix("unknown").NVals() != 0 {
		t.Fatal("unknown label must yield empty matrix")
	}
}

func TestGrowOnDemand(t *testing.T) {
	g := New(2)
	g.AddEdge(0, "a", 7)
	if g.NumVertices() != 8 {
		t.Fatalf("vertices = %d, want 8", g.NumVertices())
	}
	g.AddVertexLabel(0, "x")
	g.AddVertexLabel(11, "x")
	if g.NumVertices() != 12 || !g.HasVertexLabel(0, "x") || !g.HasVertexLabel(11, "x") {
		t.Fatal("grow lost vertex labels")
	}
	if !g.HasEdge(0, "a", 7) {
		t.Fatal("grow lost edges")
	}
	if g.EdgeMatrix("a").NRows() != 12 {
		t.Fatal("edge matrix not resized")
	}
}

func TestRejectsStoredInverseLabels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stored inverse label")
		}
	}()
	New(2).AddEdge(0, "a_r", 1)
}

func TestEdgesIteration(t *testing.T) {
	g := paperGraph()
	var triples []string
	g.Edges(func(src int, label string, dst int) bool {
		triples = append(triples, strings.Join([]string{label}, ""))
		return true
	})
	if len(triples) != 9 {
		t.Fatalf("visited %d edges, want 9", len(triples))
	}
	// Early stop.
	n := 0
	g.Edges(func(int, string, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestReachable(t *testing.T) {
	g := New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	g.AddEdge(3, "a", 4) // disconnected component
	src := matrix.NewVectorFromIndices(6, []int{0})
	got := g.Reachable(src, false)
	if !got.Equal(matrix.NewVectorFromIndices(6, []int{0, 1, 2})) {
		t.Fatalf("reachable = %v", got)
	}
	// With inverse edges, 1 reaches 0 as well.
	got = g.Reachable(matrix.NewVectorFromIndices(6, []int{2}), true)
	if !got.Equal(matrix.NewVectorFromIndices(6, []int{0, 1, 2})) {
		t.Fatalf("undirected reachable = %v", got)
	}
}

func TestStats(t *testing.T) {
	g := paperGraph()
	s := g.Stats()
	if s.Vertices != 6 || s.Edges != 9 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ByLabel["d"] != 3 || s.ByLabel["a"] != 2 {
		t.Fatalf("per-label stats = %v", s.ByLabel)
	}
}

func TestIORoundTrip(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	g.Edges(func(src int, label string, dst int) bool {
		if !back.HasEdge(src, label, dst) {
			t.Fatalf("lost edge %d -%s-> %d", src, label, dst)
		}
		return true
	})
	for _, l := range g.VertexLabels() {
		if !back.VertexSet(l).Equal(g.VertexSet(l)) {
			t.Fatalf("lost vertex labels %q", l)
		}
	}
}

func TestIORoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(30)
	labels := []string{"p", "q", "r"}
	for i := 0; i < 150; i++ {
		g.AddEdge(rng.Intn(30), labels[rng.Intn(3)], rng.Intn(30))
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if !back.EdgeMatrix(l).Equal(g.EdgeMatrix(l)) {
			t.Fatalf("label %q matrices differ", l)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0 a",        // two fields
		"x a 1",      // bad src
		"0 a y",      // bad dst
		"vertex x l", // bad vertex id
		"order -5",   // bad order
		"too many fields here now",
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q): expected error", src)
		}
	}
}

func TestReadOrderAndComments(t *testing.T) {
	g, err := Read(strings.NewReader("# hello\norder 10\n0 a 1 # trailing\n\nvertex 2 x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || !g.HasEdge(0, "a", 1) || !g.HasVertexLabel(2, "x") {
		t.Fatalf("parsed graph wrong: n=%d", g.NumVertices())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/graph.txt"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/g.txt"
	g := paperGraph()
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip lost edges")
	}
}

func TestAdjacencyUnion(t *testing.T) {
	g := New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	u := g.AdjacencyUnion(false)
	if u.NVals() != 2 || !u.Get(0, 1) || !u.Get(1, 2) {
		t.Fatalf("union wrong:\n%v", u)
	}
	ui := g.AdjacencyUnion(true)
	if ui.NVals() != 4 || !ui.Get(1, 0) || !ui.Get(2, 1) {
		t.Fatalf("undirected union wrong:\n%v", ui)
	}
}
