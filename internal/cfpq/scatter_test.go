package cfpq

import (
	"reflect"
	"testing"
	"testing/quick"

	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

// scatter row-filters union-run pairs down to one member's source set.
// It mirrors the batch coalescer's scatter step: Pairs() is row-major
// sorted, so filtering preserves the solo run's exact ordering.
func scatter(pairs [][2]int, src *matrix.Vector) [][2]int {
	out := make([][2]int, 0, len(pairs))
	for _, p := range pairs {
		if src.Get(p[0]) {
			out = append(out, p)
		}
	}
	return out
}

// Property (testing/quick): running MultiSource once over the union of
// several source sets and scattering the answer per member is
// byte-identical to running each member solo — the correctness core of
// batch coalescing (DESIGN.md §14). Member sets are built to overlap,
// one member duplicates another exactly, and one member is empty.
func TestMultiSourceScatterQuick(t *testing.T) {
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	f := func(edges []uint16, seeds []uint8) bool {
		const n = 20
		g := quickGraph(n, edges)

		// Three overlapping member sets drawn from one seed pool, plus
		// an exact duplicate of member 0 and an empty set.
		members := make([]*matrix.Vector, 5)
		for i := range members {
			members[i] = matrix.NewVector(n)
		}
		for i, s := range seeds {
			v := int(s) % n
			members[i%3].Set(v)
			if i%2 == 0 {
				members[(i+1)%3].Set(v) // force overlap between sets
			}
		}
		for _, v := range members[0].Ints() {
			members[3].Set(v) // duplicate of member 0
		}
		// members[4] stays empty.

		union := matrix.NewVector(n)
		for _, m := range members {
			for _, v := range m.Ints() {
				union.Set(v)
			}
		}

		shared, err := MultiSource(g, w, union)
		if err != nil {
			return false
		}
		unionPairs := shared.Answer().Pairs()
		for _, m := range members {
			solo, err := MultiSource(g, w, m)
			if err != nil {
				return false
			}
			got := scatter(unionPairs, m)
			want := solo.Answer().Pairs()
			if len(got) != len(want) {
				return false
			}
			if len(want) > 0 && !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The scatter property holds for every source-restricted engine, not
// just the default one: a batch may run any of them.
func TestScatterAcrossEngines(t *testing.T) {
	w := grammar.MustWCNF(grammar.Dyck1("a", "b"))
	g := quickGraph(16, []uint16{
		0x0001, 0x0102, 0x0203, 0x0304, 0x0400, 0x0506,
		0x0607, 0x0705, 0x0008, 0x0809, 0x0900, 0x0a0b,
	})
	members := []*matrix.Vector{
		matrix.NewVectorFromIndices(16, []int{0, 1, 2}),
		matrix.NewVectorFromIndices(16, []int{2, 3, 5}), // overlaps with member 0
		matrix.NewVectorFromIndices(16, []int{0, 1, 2}), // duplicate of member 0
		matrix.NewVector(16),                            // empty
	}
	union := matrix.NewVectorFromIndices(16, []int{0, 1, 2, 3, 5})

	engines := []struct {
		name string
		run  func(src *matrix.Vector) ([][2]int, error)
	}{
		{"multisource", func(src *matrix.Vector) ([][2]int, error) {
			r, err := MultiSource(g, w, src)
			if err != nil {
				return nil, err
			}
			return r.Answer().Pairs(), nil
		}},
		{"allpairs-restricted", func(src *matrix.Vector) ([][2]int, error) {
			r, err := AllPairs(g, w)
			if err != nil {
				return nil, err
			}
			return r.PairsFrom(src), nil
		}},
		{"singlepath-ms", func(src *matrix.Vector) ([][2]int, error) {
			r, err := MultiSourceSinglePath(g, w, src)
			if err != nil {
				return nil, err
			}
			return r.Answer().Pairs(), nil
		}},
	}
	for _, e := range engines {
		name, run := e.name, e.run
		unionPairs, err := run(union)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, m := range members {
			want, err := run(m)
			if err != nil {
				t.Fatalf("%s member %d: %v", name, i, err)
			}
			got := scatter(unionPairs, m)
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("%s member %d: scattered %v != solo %v", name, i, got, want)
			}
		}
	}
}
