package cfpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/matrix"
)

// TestWarmIndexMatchesFreshProperty: an index warm-started from a prior
// version's relations answers every query on the grown graph exactly as
// a fresh index does — the soundness contract that lets gdb carry a
// PathCtx across versions (monotone edge addition keeps old facts
// derivable; processed-source claims are reset).
func TestWarmIndexMatchesFreshProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				n := 5 + rng.Intn(12)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				prior, err := NewIndex(g, w)
				if err != nil {
					t.Fatal(err)
				}
				// Populate the prior index with a few queries.
				for q := 0; q < 3; q++ {
					src := matrix.NewVectorFromIndices(n, []int{rng.Intn(n), rng.Intn(n)})
					if _, err := prior.MultiSourceSmart(src); err != nil {
						t.Fatal(err)
					}
				}
				// Grow a successor version: additions only, including new
				// vertices — the gdb write-path guarantee.
				g2 := g.CowClone()
				n2 := n + 1 + rng.Intn(3)
				for e := 0; e < 1+rng.Intn(6); e++ {
					g2.AddEdge(rng.Intn(n2), labels[rng.Intn(len(labels))], rng.Intn(n2))
				}
				n2 = g2.NumVertices()

				warm, err := NewIndexWarm(g2, w, prior)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := NewIndex(g2, w)
				if err != nil {
					t.Fatal(err)
				}
				for q := 0; q < 4; q++ {
					src := matrix.NewVectorFromIndices(n2, []int{rng.Intn(n2), rng.Intn(n2)})
					wa, err := warm.MultiSourceSmart(src)
					if err != nil {
						t.Fatal(err)
					}
					fa, err := fresh.MultiSourceSmart(src)
					if err != nil {
						t.Fatal(err)
					}
					if !wa.Answer().Equal(fa.Answer()) {
						t.Fatalf("trial %d query %d src=%v: warm differs from fresh\nwarm:  %v\nfresh: %v",
							trial, q, src.Ints(), wa.Answer().Pairs(), fa.Answer().Pairs())
					}
				}
			}
		})
	}
}

func TestWarmIndexNilPriorAndErrors(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	idx, err := NewIndexWarm(g, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.MultiSourceSmart(matrix.NewVectorFromIndices(6, []int{3})); err != nil {
		t.Fatal(err)
	}

	prior, err := NewIndex(g, w)
	if err != nil {
		t.Fatal(err)
	}
	// A different grammar object must be rejected even if structurally
	// equal: the seeded relation ids would silently mean other symbols.
	w2 := cndGrammar()
	if _, err := NewIndexWarm(g, w2, prior); err == nil {
		t.Fatal("expected grammar mismatch error")
	}
	// Warm-starting onto a SMALLER graph is not a supergraph.
	small := randomGraph(rand.New(rand.NewSource(1)), 3, 3, []string{"a", "b"})
	if _, err := NewIndexWarm(small, w, prior); err == nil {
		t.Fatal("expected shrunk-graph error")
	}
}
