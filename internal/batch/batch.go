// Package batch coalesces concurrent multiple-source CFPQ queries into
// shared fixpoints. The paper's central observation — the multiple-
// source algorithm amortizes the matrix fixpoint across source vertices
// — becomes a server-side throughput lever here: in-flight queries that
// agree on (snapshot version + store incarnation, grammar, algorithm,
// limits) are grouped within a short admission window, their source
// sets are unioned into one matrix.Vector, a single governed fixpoint
// answers the union, and each waiter gets exactly the rows of its own
// sources scattered back (DESIGN.md §14).
//
// Admission is adaptive: a lone query never waits — a window only opens
// when another evaluation with the same key is already in flight, so
// the uncontended path has zero added latency.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
	"mscfpq/internal/store"
)

// Request describes one multiple-source CFPQ evaluation submitted to
// the coalescer. Every field that shapes the answer or the governance
// of the run participates in the group key, so members of one group are
// interchangeable up to their source sets.
type Request struct {
	// StoreID and Version identify the pinned snapshot the evaluation
	// must answer for. A batch never mixes versions or incarnations.
	StoreID uint64
	Version uint64
	// Graph is the immutable graph of that (StoreID, Version) snapshot.
	Graph *graph.Graph
	// WCNF is the query grammar. Members of one group may hold distinct
	// WCNF pointers: equality of the α-renaming-invariant GrammarHash
	// guarantees identical answer pairs regardless of which member's
	// grammar object runs.
	WCNF *grammar.WCNF
	// Sources is the query's source-vertex set (never nil).
	Sources *matrix.Vector
	// Algorithm selects the evaluator; AlgAuto resolves to
	// AlgMultiSource (a source set is always present here), matching
	// cfpq.Eval and store.CachedEval so cache keys line up.
	Algorithm exec.Algorithm
	// Timeout and Budget are the per-member governance limits. They are
	// part of the group key, so one shared exec.Run governs the batch
	// with Budget × members and the member share is attributed
	// proportionally to its source count.
	Timeout time.Duration
	Budget  int64
	// Workers and Hybrid select multiplication kernels (part of the key).
	Workers int
	Hybrid  bool
	// Trace, when non-nil, receives batch.wait / batch.run spans for
	// this member. Never shared across members.
	Trace *obs.Trace
	// GrammarHash optionally carries a precomputed store.GrammarHash of
	// WCNF; empty means the coalescer hashes on admission.
	GrammarHash string
}

// Stats describes how one member's answer was produced.
type Stats struct {
	// Algorithm is the algorithm that ran (AlgAuto resolved).
	Algorithm exec.Algorithm
	// Batched reports whether the answer came from a shared fixpoint.
	Batched bool
	// Members is the group size (1 for a solo run).
	Members int
	// Rounds is the fixpoint round count of the (shared) evaluation.
	Rounds int
	// Work is this member's attributed governor charge: the full charge
	// for a solo run, the share proportional to its source count for a
	// batched one.
	Work int64
}

// CoalescerStats is a point-in-time snapshot of the scheduler counters
// (process-global equivalents live in the obs registry as batch.*).
type CoalescerStats struct {
	// Groups is the number of shared fixpoints run; Members the total
	// waiters they answered; Solo the evaluations that took the
	// uncontended fast path; Aborted the groups whose every member was
	// cancelled before the fixpoint started.
	Groups, Members, Solo, Aborted uint64
	// SourcesDeduped counts source vertices saved by unioning
	// (sum of member source counts minus union sizes).
	SourcesDeduped uint64
	// OpenGroups and InFlight describe the current instant: groups still
	// admitting, and solo/flushed evaluations currently running.
	OpenGroups, InFlight int
}

// Coalescer is the admission scheduler. One instance serves a whole
// database; it is safe for concurrent use.
type Coalescer struct {
	// cache, when non-nil and enabled, is seeded after every evaluation
	// with per-member and per-source EvalKey entries. Set once at
	// construction, immutable afterwards (internally synchronized).
	cache *store.Cache

	mu         sync.Mutex
	window     time.Duration     // guarded by mu: 0 disables coalescing
	maxSources int               // guarded by mu: union cap per group, 0 = uncapped
	groups     map[string]*group // guarded by mu: open groups by key
	inflight   map[string]int    // guarded by mu: running evaluations by key
	stats      CoalescerStats    // guarded by mu (counter part only)
}

// NewCoalescer returns a disabled coalescer (window 0: every query runs
// solo) that seeds cache when enabled. cache may be nil.
func NewCoalescer(cache *store.Cache) *Coalescer {
	return &Coalescer{
		cache:    cache,
		groups:   map[string]*group{},
		inflight: map[string]int{},
	}
}

// Configure installs the admission window and the union-size cap.
// window 0 disables coalescing entirely; maxSources 0 leaves the union
// uncapped (a group flushes only when its window expires).
func (c *Coalescer) Configure(window time.Duration, maxSources int) {
	c.mu.Lock()
	c.window, c.maxSources = window, maxSources
	c.mu.Unlock()
}

// Stats snapshots the scheduler counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.OpenGroups = len(c.groups)
	for _, n := range c.inflight {
		s.InFlight += n
	}
	return s
}

// member is one waiter of a group. The flusher goroutine owns the
// result fields; waiters read them only after done is closed (the
// channel close is the happens-before edge).
type member struct {
	req   Request
	ctx   context.Context
	pairs [][2]int
	stats Stats
	err   error
}

// group is one admission window's worth of coalesced requests. The
// members/union/closed fields are guarded by the Coalescer's mu while
// the group is open; once closed (removed from Coalescer.groups) the
// flusher goroutine owns them exclusively.
type group struct {
	key     string
	members []*member
	union   *matrix.Vector
	srcSum  int  // sum of member source counts before dedup
	closed  bool // no longer admitting; flush owns the group
	done    chan struct{}
	runDur  time.Duration // set by the flusher before done closes

	// Liveness: the batch fixpoint is cancelled only when every member's
	// context has died — one member cancelling must not abort answers
	// the rest are still waiting for.
	gmu    sync.Mutex
	live   int                // guarded by gmu
	cancel context.CancelFunc // guarded by gmu: set once the fixpoint starts
}

// memberGone records one member's context ending; the last one out
// cancels the shared fixpoint.
func (g *group) memberGone() {
	g.gmu.Lock()
	g.live--
	lastOut := g.live <= 0
	cancel := g.cancel
	g.gmu.Unlock()
	if lastOut && cancel != nil {
		cancel()
	}
}

// arm publishes the fixpoint's cancel function; it reports false when
// every member already left (the flush should abort without running).
func (g *group) arm(cancel context.CancelFunc) bool {
	g.gmu.Lock()
	defer g.gmu.Unlock()
	if g.live <= 0 {
		return false
	}
	g.cancel = cancel
	return true
}

// resolveAlg mirrors cfpq.Eval's AlgAuto resolution for the
// sources-present shape, keeping group keys and cache keys aligned.
func resolveAlg(a exec.Algorithm) exec.Algorithm {
	if a == exec.AlgAuto {
		return exec.AlgMultiSource
	}
	return a
}

// keyFor fingerprints everything two requests must agree on to share a
// fixpoint. Source sets are deliberately absent — they are what a group
// unions.
func keyFor(req Request, alg exec.Algorithm) string {
	h := req.GrammarHash
	if h == "" {
		h = store.GrammarHash(req.WCNF)
	}
	return fmt.Sprintf("%d|%d|%s|%d|%d|%d|%d|%t",
		req.StoreID, req.Version, h, alg, req.Timeout, req.Budget, req.Workers, req.Hybrid)
}

// Eval answers one multiple-source CFPQ request, coalescing it with
// concurrent same-key requests when the admission window is open.
// The fast path — no same-key evaluation in flight, or coalescing
// disabled — runs the query immediately with no added latency.
func (c *Coalescer) Eval(ctx context.Context, req Request) ([][2]int, Stats, error) {
	if req.Graph == nil || req.WCNF == nil || req.Sources == nil {
		return nil, Stats{}, fmt.Errorf("batch: request needs graph, grammar and sources")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	alg := resolveAlg(req.Algorithm)
	key := keyFor(req, alg)

	c.mu.Lock()
	// Join an open group for this key.
	if g := c.groups[key]; g != nil && !g.closed {
		m := c.admitLocked(g, req, ctx, alg)
		flushNow := g.closed // admission may have hit the union cap
		c.mu.Unlock()
		if flushNow {
			c.flush(g, key)
		}
		return c.wait(ctx, g, m)
	}
	// Open a window: only under concurrency (a same-key evaluation is
	// already running) and only when coalescing is enabled.
	if c.window > 0 && c.inflight[key] > 0 {
		g := &group{key: key, union: matrix.NewVector(req.Sources.Size()), done: make(chan struct{})}
		m := c.admitLocked(g, req, ctx, alg)
		if !g.closed {
			c.groups[key] = g
			window := c.window
			c.mu.Unlock()
			time.AfterFunc(window, func() { c.flushAfterWindow(g, key) })
		} else {
			// The very first member already filled the union cap.
			c.mu.Unlock()
			c.flush(g, key)
		}
		return c.wait(ctx, g, m)
	}
	// Fast path: run solo, leaving a marker so overlapping arrivals know
	// to open a window.
	c.inflight[key]++
	c.stats.Solo++
	window := c.window
	c.mu.Unlock()
	obs.BatchSolo.Inc()
	if window > 0 {
		// Publish-then-yield: peers woken alongside us (e.g. by a flush
		// they all waited on) are runnable but, on a saturated machine,
		// not yet running. One scheduling point lets them observe the
		// in-flight marker and pile into a window that flushes after
		// this run, instead of starving into serial solos. A truly lone
		// query yields to an empty run queue — no added latency.
		runtime.Gosched()
	}
	pairs, stats, err := c.evalSolo(ctx, req, alg)
	c.mu.Lock()
	c.inflight[key]--
	c.mu.Unlock()
	return pairs, stats, err
}

// RunBatch evaluates reqs as one forced group — no admission window,
// every request a member — and returns each member's scattered answer
// in request order. It is the deterministic core the adaptive scheduler
// drives; tests and the differential harness call it directly.
func (c *Coalescer) RunBatch(ctx context.Context, reqs []Request) ([][][2]int, []Stats, error) {
	if len(reqs) == 0 {
		return nil, nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	alg := resolveAlg(reqs[0].Algorithm)
	key := keyFor(reqs[0], alg)
	g := &group{key: key, union: matrix.NewVector(reqs[0].Sources.Size()), done: make(chan struct{})}
	c.mu.Lock()
	for _, req := range reqs {
		if req.Graph == nil || req.WCNF == nil || req.Sources == nil {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("batch: request needs graph, grammar and sources")
		}
		if k := keyFor(req, resolveAlg(req.Algorithm)); k != key {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("batch: mixed group keys %q vs %q", key, k)
		}
		m := &member{req: req, ctx: ctx, stats: Stats{Algorithm: alg}}
		g.members = append(g.members, m)
		g.srcSum += req.Sources.NVals()
		g.union.UnionInPlace(req.Sources)
		g.gmu.Lock()
		g.live++
		g.gmu.Unlock()
	}
	g.closed = true
	c.inflight[key]++
	c.mu.Unlock()
	// All members share the caller's context: its death empties the
	// group and cancels the fixpoint.
	stop := context.AfterFunc(ctx, func() {
		g.gmu.Lock()
		g.live = 0
		cancel := g.cancel
		g.gmu.Unlock()
		if cancel != nil {
			cancel()
		}
	})
	defer stop()
	c.flush(g, key)
	pairs := make([][][2]int, len(g.members))
	stats := make([]Stats, len(g.members))
	var firstErr error
	for i, m := range g.members {
		pairs[i], stats[i] = m.pairs, m.stats
		if m.err != nil && firstErr == nil {
			firstErr = m.err
		}
	}
	return pairs, stats, firstErr
}

// admitLocked adds a request to an open group, closing the group when
// the union reaches the source cap. Callers hold c.mu.
func (c *Coalescer) admitLocked(g *group, req Request, ctx context.Context, alg exec.Algorithm) *member {
	m := &member{req: req, ctx: ctx, stats: Stats{Algorithm: alg}}
	g.members = append(g.members, m)
	g.srcSum += req.Sources.NVals()
	g.union.UnionInPlace(req.Sources)
	g.gmu.Lock()
	g.live++
	g.gmu.Unlock()
	if c.maxSources > 0 && g.union.NVals() >= c.maxSources {
		c.closeGroupLocked(g)
	}
	return m
}

// closeGroupLocked transitions a group from admitting to flushing: it
// stops accepting members and registers the upcoming run as in flight.
// Callers hold c.mu; the actual flush happens outside the lock.
func (c *Coalescer) closeGroupLocked(g *group) {
	g.closed = true
	delete(c.groups, g.key)
	c.inflight[g.key]++
}

// flushAfterWindow is the admission timer's callback. A group already
// closed by the union cap is someone else's to flush.
func (c *Coalescer) flushAfterWindow(g *group, key string) {
	c.mu.Lock()
	if g.closed {
		c.mu.Unlock()
		return
	}
	c.closeGroupLocked(g)
	c.mu.Unlock()
	c.flush(g, key)
}

// wait blocks until the member's group has flushed or the member's own
// context dies. A member leaving early does not abort the group unless
// it was the last one alive.
func (c *Coalescer) wait(ctx context.Context, g *group, m *member) ([][2]int, Stats, error) {
	start := time.Now()
	stop := context.AfterFunc(ctx, g.memberGone)
	defer stop()
	select {
	case <-g.done:
		if m.err == nil && m.req.Trace != nil {
			m.req.Trace.AddSpan(obs.SpanBatchWait, time.Since(start)-g.runDur)
			m.req.Trace.AddSpan(obs.SpanBatchRun, g.runDur)
		}
		return m.pairs, m.stats, m.err
	case <-ctx.Done():
		return nil, m.stats, ctx.Err()
	}
}

// flush runs a closed group's shared fixpoint and scatters the answer.
func (c *Coalescer) flush(g *group, key string) {
	defer func() {
		c.mu.Lock()
		c.inflight[key]--
		c.mu.Unlock()
		close(g.done)
	}()
	first := g.members[0].req
	alg := g.members[0].stats.Algorithm
	batchCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !g.arm(cancel) {
		// Every member was cancelled during the admission window; there
		// is nobody left to answer.
		for _, m := range g.members {
			m.err = context.Canceled
		}
		c.mu.Lock()
		c.stats.Aborted++
		c.mu.Unlock()
		obs.BatchAborted.Inc()
		return
	}
	n := len(g.members)
	deduped := g.srcSum - g.union.NVals()
	c.mu.Lock()
	c.stats.Groups++
	c.stats.Members += uint64(n)
	c.stats.SourcesDeduped += uint64(deduped)
	c.mu.Unlock()
	obs.BatchGroups.Inc()
	obs.BatchMembers.Add(int64(n))
	obs.BatchMembersPerGroup.Observe(int64(n))
	obs.BatchSourcesDeduped.Add(int64(deduped))

	// One governed run for the whole group: the budget scales with the
	// membership so no member is charged for its neighbors' work up
	// front; the attribution below splits the actual charge.
	opts := []cfpq.Option{cfpq.WithContext(batchCtx), cfpq.WithAlgorithm(alg)}
	if first.Timeout > 0 {
		opts = append(opts, cfpq.WithTimeout(first.Timeout))
	}
	if first.Budget > 0 {
		opts = append(opts, cfpq.WithBudget(first.Budget*int64(n)))
	}
	if first.Workers > 0 {
		opts = append(opts, cfpq.WithWorkers(first.Workers))
	}
	if first.Hybrid {
		opts = append(opts, cfpq.WithHybridKernels())
	}
	start := time.Now()
	res, err := cfpq.Eval(first.Graph, first.WCNF, g.union, opts...)
	g.runDur = time.Since(start)
	if err != nil {
		for _, m := range g.members {
			m.err = err
		}
		return
	}
	stats := res.Stats()
	obs.BatchWorkShared.Add(stats.Work)
	// Work the members would have spent on n solo fixpoints, saved by
	// sharing one. Lower bound: solo runs cost at least the shared run.
	obs.BatchWorkAmortized.Add(stats.Work * int64(n-1))
	pairs := res.Pairs()
	unionN := g.union.NVals()
	for _, m := range g.members {
		m.pairs = scatter(pairs, m.req.Sources)
		m.stats.Batched = true
		m.stats.Members = n
		m.stats.Rounds = stats.Rounds
		if unionN > 0 {
			m.stats.Work = stats.Work * int64(m.req.Sources.NVals()) / int64(unionN)
		}
	}
	c.seed(first, alg, g, pairs)
}

// evalSolo is the uncontended fast path: one request, one fixpoint,
// identical to calling cfpq.Eval directly (plus cache seeding).
func (c *Coalescer) evalSolo(ctx context.Context, req Request, alg exec.Algorithm) ([][2]int, Stats, error) {
	opts := []cfpq.Option{cfpq.WithContext(ctx), cfpq.WithAlgorithm(alg)}
	if req.Timeout > 0 {
		opts = append(opts, cfpq.WithTimeout(req.Timeout))
	}
	if req.Budget > 0 {
		opts = append(opts, cfpq.WithBudget(req.Budget))
	}
	if req.Workers > 0 {
		opts = append(opts, cfpq.WithWorkers(req.Workers))
	}
	if req.Hybrid {
		opts = append(opts, cfpq.WithHybridKernels())
	}
	if req.Trace != nil {
		opts = append(opts, cfpq.WithTrace(req.Trace))
	}
	res, err := cfpq.Eval(req.Graph, req.WCNF, req.Sources, opts...)
	if err != nil {
		return nil, Stats{Algorithm: alg, Members: 1}, err
	}
	st := res.Stats()
	pairs := res.Pairs()
	if c.cache != nil && c.cache.Enabled() {
		k := store.EvalKey(req.StoreID, req.Version, req.WCNF, req.Sources, alg)
		c.cache.Put(k, pairs, store.PairsBytes(pairs, k), req.StoreID, req.Version)
	}
	return pairs, Stats{Algorithm: alg, Members: 1, Rounds: st.Rounds, Work: st.Work}, nil
}

// scatter filters the union answer down to one member's sources. The
// union pairs are row-major sorted (matrix.Bool.Pairs), so the filtered
// slice is byte-identical to the member's solo answer ordering.
func scatter(pairs [][2]int, src *matrix.Vector) [][2]int {
	out := make([][2]int, 0, len(pairs))
	for _, p := range pairs {
		if src.Get(p[0]) {
			out = append(out, p)
		}
	}
	return out
}

// seed warms the version-keyed cache with the batch's answers: one
// entry per member source set plus one per individual source vertex, so
// later queries for any slice of this batch hit without a fixpoint.
func (c *Coalescer) seed(req Request, alg exec.Algorithm, g *group, pairs [][2]int) {
	if c.cache == nil || !c.cache.Enabled() {
		return
	}
	for _, m := range g.members {
		k := store.EvalKey(req.StoreID, req.Version, req.WCNF, m.req.Sources, alg)
		c.cache.Put(k, m.pairs, store.PairsBytes(m.pairs, k), req.StoreID, req.Version)
	}
	// Per-source singletons: pairs are row-major, so one forward sweep
	// slices each source's row range.
	n := req.Sources.Size()
	i := 0
	for _, s := range g.union.Ints() {
		for i < len(pairs) && pairs[i][0] < s {
			i++
		}
		j := i
		for j < len(pairs) && pairs[j][0] == s {
			j++
		}
		row := pairs[i:j:j]
		single := matrix.NewVectorFromIndices(n, []int{s})
		k := store.EvalKey(req.StoreID, req.Version, req.WCNF, single, alg)
		c.cache.Put(k, row, store.PairsBytes(row, k), req.StoreID, req.Version)
		i = j
	}
}
