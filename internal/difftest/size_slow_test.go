//go:build slow

package difftest

// Slow-mode sizes: the deep sweep behind `make diff-test-slow`
// (go test -tags=slow). Same properties, two orders of magnitude more
// instances and larger graphs.
const (
	cfpqInstances      = 3000
	rpqInstances       = 1500
	metamorphicCases   = 500
	maxGraphVertices   = 40
	governedBudgetSpan = 400
)
