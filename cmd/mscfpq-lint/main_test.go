package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes the driver against the testdata mini-module and
// returns (exit code, stdout, stderr).
func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	capture := func(name string) *os.File {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	stdout, stderr := capture("stdout"), capture("stderr")
	code := run(args, stdout, stderr)
	read := func(f *os.File) string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		// Temp file; nothing to lose on a close failure.
		_ = f.Close()
		return string(b)
	}
	return code, read(stdout), read(stderr)
}

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestJSONFindingsAndExitCode: the mini-module carries exactly one
// errdrop finding; -json must render it machine-readably and the
// process must exit 1.
func TestJSONFindingsAndExitCode(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", fixtureRoot(t), "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "errdrop" || filepath.ToSlash(d.File) != "internal/use/use.go" || d.Line == 0 {
		t.Fatalf("unexpected finding: %+v", d)
	}
	if !strings.Contains(d.Message, "discarded") {
		t.Fatalf("unexpected message: %s", d.Message)
	}
}

// TestCleanPackageExitsZero: an explicitly selected package with no
// findings exits 0 and prints nothing.
func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", fixtureRoot(t), "internal/graph")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run wrote to stdout: %s", stdout)
	}
}

// TestLoadErrorExitsTwo: an unloadable root is an internal error, not
// a finding.
func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, stderr := runLint(t, "-root", filepath.Join(t.TempDir(), "nope"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if stderr == "" {
		t.Fatal("load error did not reach stderr")
	}
}

// TestUnknownAnalyzerExitsTwo: -run with a bad name is usage error 2.
func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, _ := runLint(t, "-root", fixtureRoot(t), "-run", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestUnusedSuppressions: the stale ignore in the mini-module is only
// reported under -unused-suppressions, as the pseudo-analyzer
// "suppressions".
func TestUnusedSuppressions(t *testing.T) {
	code, stdout, _ := runLint(t, "-root", fixtureRoot(t), "-unused-suppressions", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	var stale []jsonDiag
	for _, d := range diags {
		if d.Analyzer == "suppressions" {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("stale suppressions = %d, want 1: %+v", len(stale), diags)
	}
	if filepath.ToSlash(stale[0].File) != "internal/use/use.go" || !strings.Contains(stale[0].Message, "stale //lint:ignore") {
		t.Fatalf("unexpected stale report: %+v", stale[0])
	}
}

// TestHelpListsAnalyzers: -help must name every analyzer with its
// one-line doc (the acceptance bar for discoverability).
func TestHelpListsAnalyzers(t *testing.T) {
	code, _, stderr := runLint(t, "-help")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (flag package help path)", code)
	}
	for _, a := range analyzers {
		if !strings.Contains(stderr, a.Name) {
			t.Errorf("-help does not mention analyzer %s", a.Name)
		}
	}
	if len(analyzers) != 8 {
		t.Errorf("suite has %d analyzers, want 8", len(analyzers))
	}
}
