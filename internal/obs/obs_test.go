package obs

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Fatalf("count=%d sum=%d, want 5/5126", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	want := Snapshot{
		"lat.count":  5,
		"lat.sum":    5126,
		"lat.le.10":  2, // 5, 10
		"lat.le.100": 2, // 11, 100
		"lat.le.inf": 1, // 5000
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("snapshot = %v, want %v", s, want)
	}
}

func TestSnapshotSubAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	d := r.Counter("y")
	c.Add(3)
	before := r.Snapshot()
	c.Add(2)
	d.Add(7)
	diff := r.Snapshot().Sub(before)
	if !reflect.DeepEqual(diff, Snapshot{"x": 2, "y": 7}) {
		t.Fatalf("diff = %v", diff)
	}
	lines := diff.Render()
	want := []string{"x:2", "y:7"}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("render = %v, want %v", lines, want)
	}
}

func TestSetEnabledGatesUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gated")
	h := r.Histogram("gh", SizeBuckets)
	g := r.Gauge("gg")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Inc()
	h.Observe(9)
	g.Set(5)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Fatal("updates must be dropped while disabled")
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("updates must resume once re-enabled")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{1})
	c.Add(5)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset must zero instruments")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("instrument pointers must stay live across reset")
	}
}

// TestConcurrentUpdates is the race-detector test required by the
// issue: hammer instruments from many goroutines while snapshotting.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc.c")
	g := r.Gauge("conc.g")
	h := r.Histogram("conc.h", SizeBuckets)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 100))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var bucketTotal int64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != h.Count() {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count())
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("query")
	tr.AddSpan("parse", 5*time.Millisecond)
	s := tr.Start("execute")
	tr.Add(KeyMulOps, 2)
	inner := tr.Start("round")
	tr.Add(KeyMulOps, 3)
	tr.Add(KeyMulNNZ, 40)
	inner.End()
	tr.Add(KeyAddOps, 1)
	s.End()
	tr.Close()

	root := tr.Root()
	if root.Name != "query" || len(root.Children) != 2 {
		t.Fatalf("root shape wrong: %+v", root)
	}
	if root.Children[0].Name != "parse" || root.Children[0].Dur != 5*time.Millisecond {
		t.Fatalf("parse span wrong: %+v", root.Children[0])
	}
	ex := root.Children[1]
	if ex.Name != "execute" || len(ex.Children) != 1 || ex.Children[0].Name != "round" {
		t.Fatalf("execute span wrong: %+v", ex)
	}
	// Counter attribution: deltas land on the innermost open span.
	if ex.Counters[KeyMulOps] != 2 || ex.Counters[KeyAddOps] != 1 {
		t.Fatalf("execute counters wrong: %v", ex.Counters)
	}
	if ex.Children[0].Counters[KeyMulOps] != 3 || ex.Children[0].Counters[KeyMulNNZ] != 40 {
		t.Fatalf("round counters wrong: %v", ex.Children[0].Counters)
	}
	// Subtree totals aggregate children.
	if got := root.Total(KeyMulOps); got != 5 {
		t.Fatalf("Total(mul.ops) = %d, want 5", got)
	}
	if root.Dur <= 0 || ex.Dur <= 0 {
		t.Fatal("Close must record durations for open spans")
	}
	lines := tr.Render()
	if len(lines) != 4 {
		t.Fatalf("render lines = %d, want 4: %v", len(lines), lines)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	s := tr.Start("x")
	s.End()
	tr.Add("k", 1)
	tr.AddSpan("y", time.Millisecond)
	tr.Close()
	if tr.Root() != nil || tr.Render() != nil {
		t.Fatal("nil trace must yield nil root/render")
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowLogEntry{Query: string(rune('a' + i)), Status: "slow"})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	es := l.Entries(0)
	if len(es) != 3 || es[0].Query != "e" || es[1].Query != "d" || es[2].Query != "c" {
		t.Fatalf("entries wrong: %+v", es)
	}
	if es[0].ID != 4 {
		t.Fatalf("newest id = %d, want 4 (ids survive eviction)", es[0].ID)
	}
	if got := l.Entries(2); len(got) != 2 || got[0].Query != "e" {
		t.Fatalf("Entries(2) wrong: %+v", got)
	}
	l.Reset()
	if l.Len() != 0 || len(l.Entries(0)) != 0 {
		t.Fatal("reset must clear entries")
	}
	if id := l.Add(SlowLogEntry{}); id != 5 {
		t.Fatalf("ids must keep increasing after reset, got %d", id)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h.c").Add(9)
	r.Gauge("h.g").Set(-2)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["h.c"] != 9 || got["h.g"] != -2 {
		t.Fatalf("endpoint body wrong: %v", got)
	}
}

// TestInstrumentLayerDiscipline mirrors the obscatalog analyzer's
// layer check at runtime: every name registered in the default
// catalog must start with a declared Layer* prefix, or the RESP INFO
// command would silently file it under the wrong section.
func TestInstrumentLayerDiscipline(t *testing.T) {
	layers := map[string]bool{
		LayerKernel:   true,
		LayerGovernor: true,
		LayerGdb:      true,
		LayerDur:      true,
		LayerCache:    true,
		LayerBatch:    true,
		LayerResp:     true,
		LayerRepl:     true,
	}
	snap := Default.Snapshot()
	if len(snap) == 0 {
		t.Fatal("default registry is empty — instruments.go no longer registers at init?")
	}
	for _, key := range snap.Keys() {
		prefix, _, _ := strings.Cut(key, ".")
		if !layers[prefix] {
			t.Errorf("instrument %q has undeclared layer %q — add a Layer* constant or rename it", key, prefix)
		}
	}
}
