package gdb

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// The gdb-level replication primitives: read-only replica mode, raw
// record scanning/applying (the byte-mirror invariant), lockstep
// rotation, snapshot installs, and the pin-vs-prune contract a live
// replication tail depends on.

func TestReadOnlyReplicaRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	dump, err := db.Dump("g")
	if err != nil {
		t.Fatal(err)
	}

	db.SetReplicaSource("10.0.0.1:6380")
	if got := db.ReplicaSource(); got != "10.0.0.1:6380" {
		t.Fatalf("ReplicaSource = %q", got)
	}
	assertReadOnly := func(what string, err error) {
		t.Helper()
		var ro *ReadOnlyError
		if !errors.As(err, &ro) {
			t.Fatalf("%s on a replica: got %v, want *ReadOnlyError", what, err)
		}
		if ro.Leader != "10.0.0.1:6380" || !strings.HasPrefix(ro.Error(), "READONLY replica of 10.0.0.1:6380") {
			t.Fatalf("%s error lost the leader hint: %q", what, ro.Error())
		}
	}
	_, err = db.Query("g", `CREATE (c:N)`)
	assertReadOnly("mutating Query", err)
	assertReadOnly("Restore", db.Restore("g2", dump))
	_, err = db.Delete("g")
	assertReadOnly("Delete", err)
	assertReadOnly("Save", db.Save())

	// Reads keep serving throughout.
	res := mustQuery(t, db, "g", `MATCH (v:N)-[:e]->(u) RETURN v, u`)
	if len(res.Rows) != 1 {
		t.Fatalf("replica read returned %d rows, want 1", len(res.Rows))
	}

	// And nothing above reached the journal: a crash-restart recovers
	// exactly the pre-replica state.
	db.SetReplicaSource("")
	if err := db.Save(); err != nil {
		t.Fatalf("Save after reverting to leader mode: %v", err)
	}
	sameState(t, map[string]string{"g": dump}, dumpAll(t, reopen(t, dir)))
}

// TestPinSegmentSurvivesSaveDuringStream is the rotation-pruning
// regression: a SAVE (or three) landing while a replication tail is
// mid-transfer must not delete the pinned segment's files out from
// under the open stream. Release hands them back to the pruner.
func TestPinSegmentSurvivesSaveDuringStream(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	if err := db.Save(); err != nil { // seq 0 -> 1
		t.Fatal(err)
	}
	seq, _ := db.ReplPosition()
	if seq != 1 {
		t.Fatalf("sequence after first Save = %d, want 1", seq)
	}
	release := db.PinSegment(1)

	// Rotate well past the retention window (current-1) with the pin
	// held: seq 1's pair must survive every prune.
	for i := 0; i < 3; i++ {
		mustQuery(t, db, "g", `CREATE (x:X)`)
		if err := db.Save(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{db.SnapshotFile(1), db.JournalFile(1)} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("pinned segment file pruned during SAVE: %v", err)
		}
	}

	// Released, the next rotation sweeps them.
	release()
	release() // idempotent
	mustQuery(t, db, "g", `CREATE (y:Y)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{db.SnapshotFile(1), db.JournalFile(1)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("released segment %s still on disk (err=%v)", p, err)
		}
	}
}

func TestScanRecordsRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	mustQuery(t, db, "g", `CREATE (c:M)`)
	mustQuery(t, db, "h", `CREATE (x:P)-[:f]->(y:P)`)
	seq, off := db.ReplPosition()

	recs, end, err := ScanRecords(db.JournalFile(seq), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || end != off {
		t.Fatalf("scan = %d records ending at %d, want 3 ending at %d", len(recs), end, off)
	}
	var total int64
	for _, raw := range recs {
		if _, err := decodeFramedRecord(raw); err != nil {
			t.Fatalf("scanned record does not decode: %v", err)
		}
		total += int64(len(raw))
	}
	if total != off {
		t.Fatalf("record bytes %d != committed offset %d", total, off)
	}

	// Resume mid-file: scanning from the first record's end yields the
	// rest — the incremental catch-up path.
	rest, end2, err := ScanRecords(db.JournalFile(seq), int64(len(recs[0])), 1<<30)
	if err != nil || len(rest) != 2 || end2 != off {
		t.Fatalf("resumed scan = %d records ending at %d (%v), want 2 ending at %d", len(rest), end2, err, off)
	}

	// maxBytes caps the batch at a record boundary.
	one, endOne, err := ScanRecords(db.JournalFile(seq), 0, 1)
	if err != nil || len(one) != 1 || endOne != int64(len(recs[0])) {
		t.Fatalf("capped scan = %d records ending at %d (%v), want 1 ending at %d", len(one), endOne, err, len(recs[0]))
	}

	// A torn tail (partial record, garbage length) ends the scan at the
	// last intact boundary without error — matching recovery.
	torn := dir + "/torn.log"
	data, err := os.ReadFile(db.JournalFile(seq))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, append(data, recs[0][:5]...), 0o644); err != nil {
		t.Fatal(err)
	}
	recs2, end3, err := ScanRecords(torn, 0, 1<<30)
	if err != nil || len(recs2) != 3 || end3 != off {
		t.Fatalf("torn-tail scan = %d records ending at %d (%v), want 3 ending at %d", len(recs2), end3, err, off)
	}

	// Corrupt one payload byte: the CRC rejects that record and the scan
	// stops before it.
	data[len(recs[0])+12] ^= 0xff
	if err := os.WriteFile(torn, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs3, _, err := ScanRecords(torn, 0, 1<<30)
	if err != nil || len(recs3) != 1 {
		t.Fatalf("corrupt-record scan = %d records (%v), want 1", len(recs3), err)
	}
}

func TestDecodeFramedRecordRejectsDamage(t *testing.T) {
	raw := journalOp{op: opCypher, name: "g", arg: `CREATE (a:N)`}.encode()
	if _, err := decodeFramedRecord(raw); err != nil {
		t.Fatalf("intact record rejected: %v", err)
	}
	if _, err := decodeFramedRecord(raw[:7]); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := decodeFramedRecord(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	flipped := append([]byte(nil), raw...)
	flipped[10] ^= 0x01
	if _, err := decodeFramedRecord(flipped); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

// TestReplApplyMirrorsLeaderBytes is the mirror invariant: shipping a
// leader's raw records through ReplApply leaves the follower with the
// same state, the same (seq, off) position, and a byte-identical
// journal — so follower crash recovery is ordinary Open.
func TestReplApplyMirrorsLeaderBytes(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := reopen(t, ldir)
	follower := reopen(t, fdir)
	follower.SetReplicaSource("leader:0")

	mustQuery(t, leader, "g", `CREATE (a:N {name: 'a'})-[:e]->(b:N)`)
	mustQuery(t, leader, "g", `CREATE (c:M)`)
	mustQuery(t, leader, "h", `CREATE (x:P)-[:f]->(y:P)`)
	_, err := leader.Delete("h")
	if err != nil {
		t.Fatal(err)
	}
	lseq, loff := leader.ReplPosition()

	recs, _, err := ScanRecords(leader.JournalFile(lseq), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range recs {
		if err := follower.ReplApply(raw); err != nil {
			t.Fatalf("ReplApply: %v", err)
		}
	}

	fseq, foff := follower.ReplPosition()
	if fseq != lseq || foff != loff {
		t.Fatalf("follower position %d:%d, leader %d:%d", fseq, foff, lseq, loff)
	}
	sameState(t, dumpAll(t, leader), dumpAll(t, follower))
	lb, err := os.ReadFile(leader.JournalFile(lseq))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(follower.JournalFile(fseq))
	if err != nil {
		t.Fatal(err)
	}
	if string(lb) != string(fb) {
		t.Fatalf("journals diverged: leader %d bytes, follower %d bytes", len(lb), len(fb))
	}

	// Crash-restart the follower: recovery lands on the same position.
	f2 := reopen(t, fdir)
	sameState(t, dumpAll(t, leader), dumpAll(t, f2))
	if seq, off := f2.ReplPosition(); seq != lseq || off != loff {
		t.Fatalf("recovered follower position %d:%d, want %d:%d", seq, off, lseq, loff)
	}

	if err := follower.ReplApply([]byte("garbage")); err == nil {
		t.Fatal("ReplApply accepted a malformed record")
	}
}

func TestReplRotateLockstep(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := reopen(t, ldir)
	follower := reopen(t, fdir)
	follower.SetReplicaSource("leader:0")

	ship := func() {
		t.Helper()
		lseq, _ := leader.ReplPosition()
		_, foff := follower.ReplPosition()
		recs, _, err := ScanRecords(leader.JournalFile(lseq), foff, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		for _, raw := range recs {
			if err := follower.ReplApply(raw); err != nil {
				t.Fatal(err)
			}
		}
	}

	mustQuery(t, leader, "g", `CREATE (a:N)-[:e]->(b:N)`)
	ship()
	if err := leader.Save(); err != nil { // leader rotates 0 -> 1
		t.Fatal(err)
	}

	// Out-of-order rotation is refused: the stream must not skip.
	if err := follower.ReplRotate(2); err == nil {
		t.Fatal("ReplRotate accepted a sequence gap")
	}
	if err := follower.ReplRotate(1); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, leader, "g", `CREATE (c:M)`)
	ship()

	lseq, loff := leader.ReplPosition()
	fseq, foff := follower.ReplPosition()
	if fseq != lseq || foff != loff || lseq != 1 {
		t.Fatalf("positions diverged after rotation: leader %d:%d, follower %d:%d", lseq, loff, fseq, foff)
	}
	sameState(t, dumpAll(t, leader), dumpAll(t, follower))
	// The follower cut its own snap-1 when rotating — same boundary
	// state as the leader's, recoverable on its own.
	if _, err := os.Stat(follower.SnapshotFile(1)); err != nil {
		t.Fatalf("follower rotation cut no snapshot: %v", err)
	}
	sameState(t, dumpAll(t, leader), dumpAll(t, reopen(t, fdir)))
}

func TestReplInstallSnapshotReplacesHistory(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := reopen(t, ldir)
	mustQuery(t, leader, "g", `CREATE (a:N)-[:e]->(b:N)`)
	mustQuery(t, leader, "h", `CREATE (x:P)`)
	for i := 0; i < 2; i++ { // leader ends at seq 2, past the follower's 1
		if err := leader.Save(); err != nil {
			t.Fatal(err)
		}
	}
	seq, _ := leader.ReplPosition()

	// The follower starts with its own divergent history that must be
	// wiped by the install.
	follower := reopen(t, fdir)
	mustQuery(t, follower, "stale", `CREATE (z:Z)`)
	if err := follower.Save(); err != nil {
		t.Fatal(err)
	}
	follower.SetReplicaSource("leader:0")

	snap, err := os.Open(leader.SnapshotFile(seq))
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := follower.ReplInstallSnapshot(seq, snap); err != nil {
		t.Fatalf("ReplInstallSnapshot: %v", err)
	}

	sameState(t, dumpAll(t, leader), dumpAll(t, follower))
	if fseq, foff := follower.ReplPosition(); fseq != seq || foff != 0 {
		t.Fatalf("installed position %d:%d, want %d:0", fseq, foff, seq)
	}
	if _, err := os.Stat(follower.SnapshotFile(1)); !os.IsNotExist(err) {
		t.Fatalf("divergent snap-1 survived the install (err=%v)", err)
	}
	// The install is durable on its own: crash-restart recovers it.
	sameState(t, dumpAll(t, leader), dumpAll(t, reopen(t, fdir)))

	// A damaged stream is rejected whole and the database stays usable.
	if err := follower.ReplInstallSnapshot(seq+1, strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("damaged snapshot stream accepted")
	}
	sameState(t, dumpAll(t, leader), dumpAll(t, follower))
	left, err := os.ReadDir(fdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range left {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("rejected install leaked temp file %s", e.Name())
		}
	}
}

func TestReplInstallSnapshotInMemory(t *testing.T) {
	ldir := t.TempDir()
	leader := reopen(t, ldir)
	mustQuery(t, leader, "g", `CREATE (a:N)-[:e]->(b:N)`)
	if err := leader.Save(); err != nil {
		t.Fatal(err)
	}
	seq, _ := leader.ReplPosition()

	follower := New() // diskless replica: applies in memory only
	follower.SetReplicaSource("leader:0")
	snap, err := os.Open(leader.SnapshotFile(seq))
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := follower.ReplInstallSnapshot(seq, snap); err != nil {
		t.Fatal(err)
	}
	sameState(t, dumpAll(t, leader), dumpAll(t, follower))

	mustQuery(t, leader, "g", `CREATE (c:M)`)
	recs, _, err := ScanRecords(leader.JournalFile(seq), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range recs {
		if err := follower.ReplApply(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.ReplRotate(seq + 1); err != nil {
		t.Fatal(err)
	}
	sameState(t, dumpAll(t, leader), dumpAll(t, follower))
}

// TestWatchJournalWakesOnAppend pins down the watch contract the
// leader's tail loop depends on: a channel taken before a write is
// closed by that write, and rotation/install wake watchers too.
func TestWatchJournalWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	assertWakes := func(what string, mutate func()) {
		t.Helper()
		w := db.WatchJournal()
		mutate()
		select {
		case <-w:
		default:
			t.Fatalf("%s did not close the watch channel", what)
		}
	}
	assertWakes("journal append", func() { mustQuery(t, db, "g", `CREATE (a:N)`) })
	assertWakes("rotation", func() {
		if err := db.Save(); err != nil {
			t.Fatal(err)
		}
	})
	if New().WatchJournal() != nil {
		t.Fatal("in-memory WatchJournal must be nil")
	}
}
