package cfpq

import (
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/obs"
)

// AllPairs evaluates the context-free path query defined by w over g for
// every pair of vertices, using Azimov's matrix-based algorithm
// (Algorithm 1): relation matrices are seeded from the simple and eps
// rules and grown by Boolean matrix multiplication
//
//	T^A += T^B * T^C   for every A -> B C
//
// until no matrix changes.
func AllPairs(g *graph.Graph, w *grammar.WCNF, opts ...Option) (*Result, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	n := g.NumVertices()
	r := newResult(w, n)
	initSimpleRules(r, g)
	initEpsRules(r, n)

	for changed := true; changed; {
		// Poll once per round: with no binary rules the body below is
		// empty, and the governor must still be able to abort.
		if err := run.Err(); err != nil {
			return nil, err
		}
		changed = false
		r.Rounds++
		span := run.StartSpan(obs.SpanRound(r.Rounds))
		for _, rule := range w.BinRules {
			prod, err := run.Mul(r.T[rule.B], r.T[rule.C])
			if err != nil {
				span.End()
				return nil, err
			}
			if run.Add(r.T[rule.A], prod) {
				changed = true
			}
		}
		span.End()
	}
	obs.CFPQRounds.Observe(int64(r.Rounds))
	r.Work = run.Spent()
	return r, nil
}
