// Package detneg holds detrange negatives: map iteration the analyzer
// must accept.
package detneg

import "sort"

// sortedKeys collects then sorts — the canonical fix.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// helperSorted canonicalizes through a named Sort helper, the
// repository's oracle.SortPairs idiom.
func helperSorted(m map[int]int) [][2]int {
	var out [][2]int
	for k, v := range m {
		out = append(out, [2]int{k, v})
	}
	sortPairs(out)
	return out
}

func sortPairs(ps [][2]int) {
	sort.Slice(ps, func(i, j int) bool { return ps[i][0] < ps[j][0] })
}

// invert writes keyed by the ranged value: order-independent.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// total is a pure reduction.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
