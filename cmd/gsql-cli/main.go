// Command gsql-cli is an interactive client for gsql-server.
//
// Usage:
//
//	gsql-cli -addr localhost:6380
//
// Commands inside the REPL:
//
//	use <graph>            select the graph for queries
//	list                   GRAPH.LIST
//	delete <graph>         GRAPH.DELETE
//	save                   GRAPH.SAVE (snapshot, durable servers)
//	explain <query>        GRAPH.EXPLAIN on the selected graph
//	profile <query>        GRAPH.PROFILE on the selected graph
//	                       (per-operator plan profile; a raw
//	                       "PROFILE <query>" line lands here too)
//	trace <query>          GRAPH.QUERY with the PROFILE prefix: the
//	                       query's span tree (parse/plan/fixpoint
//	                       rounds with kernel counters)
//	info [section]         INFO (server metrics; sections: server, gdb,
//	                       kernels, durability)
//	slowlog [get [n]|len|reset]  the server's slow-query log
//	ping                   PING
//	quit
//	<anything else>        GRAPH.QUERY on the selected graph
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mscfpq/internal/resp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsql-cli:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:6380", "server address")
	graphName := flag.String("graph", "g", "initial graph name")
	flag.Parse()

	c, err := resp.Dial(*addr)
	if err != nil {
		return err
	}
	//lint:ignore errdrop closing the client at process exit; nothing can act on the error
	defer c.Close()
	if err := c.Ping(); err != nil {
		return err
	}
	fmt.Printf("connected to %s (graph %q; 'use <name>' to switch, 'quit' to exit)\n", *addr, *graphName)
	return repl(c, *graphName, os.Stdin, os.Stdout)
}

// repl reads commands from in and writes responses to out until EOF or
// a quit command. Lines ending in a backslash continue on the next
// line, so multi-clause PATH PATTERN queries can be typed naturally.
func repl(c *resp.Client, current string, in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for {
		fmt.Fprintf(out, "%s> ", current)
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		for strings.HasSuffix(line, "\\") {
			fmt.Fprintf(out, "...> ")
			if !sc.Scan() {
				break
			}
			line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(sc.Text())
		}
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return nil
		case "ping":
			if err := c.Ping(); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "PONG")
			}
		case "use":
			if rest == "" {
				fmt.Fprintln(out, "usage: use <graph>")
				continue
			}
			current = strings.TrimSpace(rest)
		case "list":
			names, err := c.GraphList()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			for _, n := range names {
				fmt.Fprintln(out, n)
			}
		case "delete":
			if err := c.GraphDelete(strings.TrimSpace(rest)); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "save":
			if err := c.GraphSave(); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "explain":
			lines, err := c.GraphExplain(current, rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			for _, l := range lines {
				fmt.Fprintln(out, l)
			}
		case "profile":
			lines, err := c.GraphProfile(current, rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			for _, l := range lines {
				fmt.Fprintln(out, l)
			}
		case "trace":
			reply, err := c.GraphQuery(current, "PROFILE "+rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			for _, s := range reply.Stats {
				fmt.Fprintln(out, s)
			}
		case "info", "slowlog":
			if cmd == "slowlog" && rest == "" {
				rest = "get"
			}
			args := append([]string{strings.ToUpper(cmd)}, strings.Fields(rest)...)
			reply, err := c.Do(args...)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			printValue(out, reply, 0)
		default:
			reply, err := c.GraphQuery(current, line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if len(reply.Columns) > 0 {
				fmt.Fprintln(out, strings.Join(reply.Columns, " | "))
			}
			for _, row := range reply.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = fmt.Sprintf("%d", v)
				}
				fmt.Fprintln(out, strings.Join(cells, " | "))
			}
			for _, s := range reply.Stats {
				fmt.Fprintln(out, "--", s)
			}
		}
	}
}

// printValue renders a generic RESP reply: bulk text verbatim,
// integers as numbers, arrays indented one level per nesting (the
// SLOWLOG entry shape).
func printValue(out io.Writer, v resp.Value, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v.Kind {
	case resp.Array:
		for _, e := range v.Array {
			printValue(out, e, depth+1)
		}
	case resp.Integer:
		fmt.Fprintf(out, "%s%d\n", indent, v.Int)
	default:
		for _, line := range strings.Split(strings.TrimRight(v.Str, "\n"), "\n") {
			fmt.Fprintf(out, "%s%s\n", indent, line)
		}
	}
}
