package matrix

import (
	"testing"
)

// TestAccumulatorPoolResize exercises the pool across widths: an
// accumulator shrunk and regrown within capacity must never resurrect
// stale bits from a wider earlier use.
func TestAccumulatorPoolResize(t *testing.T) {
	a := getAccumulator(1024)
	a.reset()
	a.orRow([]uint32{0, 63, 64, 1000, 1023})
	if a.count() != 5 {
		t.Fatalf("count = %d, want 5", a.count())
	}
	putAccumulator(a)

	// Shrink: only the narrow region is visible.
	b := getAccumulator(64)
	b.reset()
	b.orRow([]uint32{1})
	if got := b.extract(nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("narrow extract = %v, want [1]", got)
	}
	putAccumulator(b)

	// Regrow within capacity: the re-exposed region must read empty.
	c := getAccumulator(1024)
	c.reset()
	c.orRow([]uint32{5})
	if c.contains(1000) || c.contains(1023) {
		t.Fatal("stale bits survived a shrink/regrow cycle")
	}
	if got := c.extract(nil); len(got) != 1 || got[0] != 5 {
		t.Fatalf("regrown extract = %v, want [5]", got)
	}
	putAccumulator(c)
}

// TestAccumulatorPoolEpochWrap forces an epoch wrap on a pooled
// accumulator and checks the explicit mark clear still holds after a
// shrink/regrow cycle around the wrap.
func TestAccumulatorPoolEpochWrap(t *testing.T) {
	a := getAccumulator(256)
	a.reset()
	a.orRow([]uint32{200})
	a.resize(64) // shrink: word of column 200 hidden, stamped with current epoch
	a.epoch = ^uint32(0)
	a.reset() // wraps: clears visible marks only
	a.resize(256)
	a.reset()
	if a.contains(200) {
		t.Fatal("stale mark matched after epoch wrap + regrow")
	}
	putAccumulator(a)
}

// mulAllocsFixture builds a multiplication whose accumulator bitset
// (width 1<<14 columns -> 2KB words + 1KB marks) dominates allocations
// unless pooled.
func mulAllocsFixture() (*Bool, *Bool) {
	const n = 1 << 14
	a := NewBool(4, n)
	b := NewBool(n, n)
	for i := 0; i < 4; i++ {
		for j := 0; j < 32; j++ {
			a.Set(i, (i*997+j*131)%n)
		}
	}
	for i := 0; i < n; i += 7 {
		b.Set(i, (i*31+5)%n)
	}
	return a, b
}

// TestMulAllocsPooled guards the accumulator pool: the steady-state
// allocation count of Mul must stay at the result rows plus small
// constants, not the O(ncols/64) accumulator arrays. Without the pool
// this fixture measures ~3 extra allocations (accumulator struct, words,
// marks) per call.
func TestMulAllocsPooled(t *testing.T) {
	a, b := mulAllocsFixture()
	Mul(a, b) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		Mul(a, b)
	})
	// 4 output rows + output struct/slice bookkeeping. The bound leaves
	// one alloc of headroom but excludes the 3 accumulator allocations.
	if allocs > 8 {
		t.Fatalf("Mul allocates %.1f objects/op; accumulator pool regressed (want <= 8)", allocs)
	}
}

func BenchmarkMulPooledAllocs(b *testing.B) {
	x, y := mulAllocsFixture()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
