package cfpq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// governedAlgorithms runs every query algorithm of the package against
// the same input under the given options, returning one error per
// algorithm. The two-cycle a^n b^n input keeps every fixpoint busy for
// many iterations, so governance has something to interrupt.
func governedAlgorithms(g *graphAndSources, opts ...Option) map[string]error {
	errs := map[string]error{}
	_, errs["AllPairs"] = AllPairs(g.g, g.w, opts...)
	_, errs["AllPairsSemiNaive"] = AllPairsSemiNaive(g.g, g.w, opts...)
	_, errs["MultiSource"] = MultiSource(g.g, g.w, g.src, opts...)
	_, errs["SinglePath"] = SinglePath(g.g, g.w, opts...)
	_, errs["MultiSourceSinglePath"] = MultiSourceSinglePath(g.g, g.w, g.src, opts...)
	_, errs["Worklist"] = Worklist(g.g, g.w, opts...)
	_, errs["WorklistMultiSource"] = WorklistMultiSource(g.g, g.w, g.src, opts...)
	if idx, err := NewIndex(g.g, g.w); err != nil {
		errs["MultiSourceSmart"] = err
	} else {
		_, errs["MultiSourceSmart"] = idx.MultiSourceSmart(g.src, opts...)
	}
	return errs
}

type graphAndSources struct {
	g   *graph.Graph
	w   *grammar.WCNF
	src *matrix.Vector
}

func anbnWCNF() *grammar.WCNF {
	return grammar.MustWCNF(grammar.AnBn("a", "b"))
}

func govInput(p int) *graphAndSources {
	g := twoCycleGraph(p, p-1)
	return &graphAndSources{
		g:   g,
		w:   anbnWCNF(),
		src: matrix.NewVectorFromIndices(g.NumVertices(), []int{0}),
	}
}

func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, err := range governedAlgorithms(govInput(20), WithContext(ctx)) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCancelledContextAbortsTerminalOnlyGrammar pins the degenerate
// case that once slipped past the governor: a grammar with no binary
// rules leaves every fixpoint body empty, so only explicit polls in
// the seeding loops and at the top of each round can observe a
// cancelled context. Before those polls existed, every algorithm
// "succeeded" on a context that was cancelled before the call.
func TestCancelledContextAbortsTerminalOnlyGrammar(t *testing.T) {
	in := govInput(20)
	in.w = grammar.MustWCNF(grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a")}},
	}))
	if len(in.w.BinRules) != 0 {
		t.Fatalf("grammar has %d binary rules, want 0", len(in.w.BinRules))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, err := range governedAlgorithms(in, WithContext(ctx)) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestTimeoutAbortsPromptly(t *testing.T) {
	// Ungoverned, this input runs for over a hundred milliseconds
	// (worklist baseline) to minutes (matrix fixpoints); a 3ms timeout
	// must abort each algorithm long before that. The elapsed bound is
	// generous — timers on loaded machines can fire tens of
	// milliseconds late — but still far below the ungoverned runtime.
	in := govInput(700)
	start := time.Now()
	errs := governedAlgorithms(in, WithTimeout(3*time.Millisecond))
	elapsed := time.Since(start)
	for name, err := range errs {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", name, err)
		}
	}
	if limit := time.Duration(len(errs)) * 500 * time.Millisecond; elapsed > limit {
		t.Fatalf("governed algorithms took %v, want < %v", elapsed, limit)
	}
}

func TestBudgetAborts(t *testing.T) {
	// A budget of 3 relation entries is exhausted by the first product
	// of every matrix algorithm; the worklist baseline charges per 1024
	// popped facts, which this input comfortably exceeds.
	for name, err := range governedAlgorithms(govInput(60), WithBudget(3)) {
		if !errors.Is(err, exec.ErrBudget) {
			t.Errorf("%s: err = %v, want exec.ErrBudget", name, err)
		}
	}
}

func TestGovernedResultsUnchanged(t *testing.T) {
	// Generous limits must not change any answer.
	in := govInput(16)
	want, err := MultiSource(in.g, in.w, in.src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MultiSource(in.g, in.w, in.src,
		WithTimeout(time.Minute), WithBudget(1<<40), WithWorkers(4), WithHybridKernels())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Answer().Equal(want.Answer()) {
		t.Fatal("governed answer differs from ungoverned")
	}
}

// TestIndexSurvivesCancelledChunks is the consistency property of the
// redesigned Index: chunks aborted mid-fixpoint (budget or context) are
// rolled back, never partially committed, so a concurrently queried
// index still satisfies MultiSourceSmart(S) == MultiSource(union of
// sources seen so far restricted to S). Run with -race to also check
// the locking.
func TestIndexSurvivesCancelledChunks(t *testing.T) {
	in := govInput(24)
	n := in.g.NumVertices()
	idx, err := NewIndex(in.g, in.w)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Saboteurs: queries doomed to abort (tiny budget, dead context).
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				src := matrix.NewVectorFromIndices(n, []int{(i*7 + j) % n})
				var opt Option
				if j%2 == 0 {
					opt = WithBudget(1)
				} else {
					opt = WithContext(dead)
				}
				if _, err := idx.MultiSourceSmart(src, opt); err == nil {
					// A cached chunk can legitimately succeed without new
					// work; nothing to assert.
					continue
				}
			}
		}()
	}
	// Honest queriers: every successful answer must match the
	// from-scratch algorithm on the same sources.
	type outcome struct {
		src *matrix.Vector
		got *matrix.Bool
	}
	results := make(chan outcome, 12)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				src := matrix.NewVectorFromIndices(n, []int{(i*11 + j*5) % n, (i + j*13) % n})
				res, err := idx.MultiSourceSmart(src)
				if err != nil {
					t.Errorf("honest query failed: %v", err)
					return
				}
				results <- outcome{src: src, got: res.Answer()}
			}
		}()
	}
	wg.Wait()
	close(results)

	for out := range results {
		want, err := MultiSource(in.g, in.w, out.src)
		if err != nil {
			t.Fatal(err)
		}
		if !out.got.Equal(want.Answer()) {
			t.Fatalf("index answer for sources %v diverged from MultiSource", out.src.Indices())
		}
	}

	// The index must still answer fresh queries correctly afterwards.
	src := matrix.NewVectorFromIndices(n, []int{0})
	res, err := idx.MultiSourceSmart(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MultiSource(in.g, in.w, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer().Equal(want.Answer()) {
		t.Fatal("index diverged after cancelled chunks")
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	_, err := AllPairs(govInput(20).g, anbnWCNF(), WithBudget(1))
	if err == nil || !errors.Is(err, exec.ErrBudget) {
		t.Fatalf("err = %v", err)
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Fatal("empty budget error message")
	}
}
