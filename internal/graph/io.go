package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The textual graph format is line-oriented, compatible with the triple
// files of the CFPQ_Data dataset:
//
//	# comment
//	0 subClassOf 1        edge 0 -[subClassOf]-> 1
//	vertex 3 x            vertex 3 carries label x
//	order 100             declare at least 100 vertices (optional)

// Write serializes the graph in the textual format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "order %d\n", g.NumVertices()); err != nil {
		return err
	}
	var err error
	g.Edges(func(src int, label string, dst int) bool {
		_, err = fmt.Fprintf(bw, "%d %s %d\n", src, label, dst)
		return err == nil
	})
	if err != nil {
		return err
	}
	for _, l := range g.VertexLabels() {
		for _, v := range g.VertexSet(l).Ints() {
			if _, err := fmt.Fprintf(bw, "vertex %d %s\n", v, l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph from the textual format.
func Read(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "order" && len(fields) == 2:
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad order %q", lineNo, fields[1])
			}
			if n > 0 && n > g.NumVertices() {
				g.grow(n - 1)
			}
		case fields[0] == "vertex" && len(fields) == 3:
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[1])
			}
			g.AddVertexLabel(v, fields[2])
		case len(fields) == 3:
			src, err1 := strconv.Atoi(fields[0])
			dst, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || src < 0 || dst < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", lineNo, line)
			}
			g.AddEdge(src, fields[1], dst)
		default:
			return nil, fmt.Errorf("graph: line %d: cannot parse %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return g, nil
}

// LoadFile reads a graph from a file.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	g, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// SaveFile writes a graph to a file.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return fmt.Errorf("graph: %s: %w", path, err)
	}
	return f.Close()
}
