package gdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/obs"
)

// Snapshot file format (see DESIGN.md §9). A snapshot is the full
// database image at one journal cut, written atomically (temp file +
// fsync + rename + directory fsync) so a file that exists under its
// final name is either complete or bit-rotted — never torn by a crash:
//
//	header:   magic "MSCFPQSNAP" | uint16 version | uint32 graph count
//	section:  uint32 nameLen | name | uint64 payloadLen | payload |
//	          uint32 CRC32(name ++ payload)
//
// Sections are sorted by graph name; payloads are the textual
// WriteStore encoding. All integers are big-endian. Readers validate
// the magic, the version, every section CRC, and that the file ends
// exactly after the last section.

const (
	snapshotMagic   = "MSCFPQSNAP"
	snapshotVersion = 1

	// maxSnapshotSection bounds a single section payload (1 GiB) so a
	// corrupted length field cannot force a huge allocation.
	maxSnapshotSection = 1 << 30
)

// Failpoints in the snapshot write path, in write order. Tests arm
// them to fail, tear, or delay each step; the chaos suite enumerates
// them through fault.Names.
const (
	FPSnapshotCreate  = "gdb.snapshot.create"
	FPSnapshotWrite   = "gdb.snapshot.write"
	FPSnapshotSync    = "gdb.snapshot.sync"
	FPSnapshotRename  = "gdb.snapshot.rename"
	FPSnapshotDirSync = "gdb.snapshot.dirsync"
)

var _ = fault.Declare(FPSnapshotCreate, FPSnapshotWrite, FPSnapshotSync,
	FPSnapshotRename, FPSnapshotDirSync)

// snapshotPath names the snapshot file of a journal sequence.
func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// journalPath names the journal file of a sequence.
func journalPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// parseSeq extracts the sequence from a snap-/wal- file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	hexs := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hexs) != 16 {
		return 0, false
	}
	if _, err := fmt.Sscanf(hexs, "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// writeSnapshotTo streams the snapshot encoding of stores onto w.
func writeSnapshotTo(w io.Writer, stores map[string]*GraphStore) error {
	bw := bufio.NewWriter(w)
	header := make([]byte, 0, len(snapshotMagic)+6)
	header = append(header, snapshotMagic...)
	header = binary.BigEndian.AppendUint16(header, snapshotVersion)
	header = binary.BigEndian.AppendUint32(header, uint32(len(stores)))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	names := make([]string, 0, len(stores))
	for n := range stores {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		var payload strings.Builder
		if err := WriteStore(&payload, stores[name]); err != nil {
			return fmt.Errorf("gdb: snapshot %q: %w", name, err)
		}
		sec := make([]byte, 0, 4+len(name)+8)
		sec = binary.BigEndian.AppendUint32(sec, uint32(len(name)))
		sec = append(sec, name...)
		sec = binary.BigEndian.AppendUint64(sec, uint64(payload.Len()))
		if _, err := bw.Write(sec); err != nil {
			return err
		}
		if _, err := bw.WriteString(payload.String()); err != nil {
			return err
		}
		crc := crc32.ChecksumIEEE([]byte(name))
		crc = crc32.Update(crc, crc32.IEEETable, []byte(payload.String()))
		if err := binary.Write(bw, binary.BigEndian, crc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeSnapshotFile writes the snapshot for seq atomically into dir:
// the encoding goes to a temp file that is fsynced, closed, renamed to
// its final name, and made durable with a directory fsync. On any
// error the temp file is removed and the previous snapshot (if any) is
// untouched.
func writeSnapshotFile(dir string, seq uint64, stores map[string]*GraphStore) (err error) {
	if err := fault.Inject(FPSnapshotCreate); err != nil {
		return fmt.Errorf("gdb: snapshot create: %w", err)
	}
	f, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("gdb: snapshot create: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			//lint:ignore errdrop best-effort cleanup of a temp file after the write already failed
			_ = f.Close()
			// Ditto; the temp file is ignored by recovery either way.
			_ = os.Remove(tmp)
		}
	}()
	if err := fault.Inject(FPSnapshotWrite); err != nil {
		return fmt.Errorf("gdb: snapshot write: %w", err)
	}
	cw := &obs.CountingWriter{W: fault.Writer(FPSnapshotWrite, f)}
	if err := writeSnapshotTo(cw, stores); err != nil {
		return fmt.Errorf("gdb: snapshot write: %w", err)
	}
	if err := fault.Inject(FPSnapshotSync); err != nil {
		return fmt.Errorf("gdb: snapshot sync: %w", err)
	}
	syncStart := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("gdb: snapshot sync: %w", err)
	}
	obs.DurFsyncLatencyUS.Observe(time.Since(syncStart).Microseconds())
	if err := f.Close(); err != nil {
		return fmt.Errorf("gdb: snapshot close: %w", err)
	}
	if err := fault.Inject(FPSnapshotRename); err != nil {
		return fmt.Errorf("gdb: snapshot rename: %w", err)
	}
	if err := os.Rename(tmp, snapshotPath(dir, seq)); err != nil {
		return fmt.Errorf("gdb: snapshot rename: %w", err)
	}
	if err := fault.Inject(FPSnapshotDirSync); err != nil {
		return fmt.Errorf("gdb: snapshot dirsync: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("gdb: snapshot dirsync: %w", err)
	}
	obs.DurSnapshots.Inc()
	obs.DurSnapshotBytes.Add(cw.N)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		//lint:ignore errdrop the sync error is the one worth reporting; close cannot add to it
		_ = d.Close()
		return err
	}
	return d.Close()
}

// readSnapshotFile loads and validates a snapshot file, returning the
// decoded stores. Any structural damage — bad magic, unknown version,
// CRC mismatch, short file, trailing garbage — is an error; the caller
// falls back to an older snapshot.
func readSnapshotFile(path string) (map[string]*GraphStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdrop read-only file; close failures cannot lose data
	defer f.Close()
	r := bufio.NewReader(f)

	header := make([]byte, len(snapshotMagic)+6)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("gdb: snapshot %s: short header: %w", path, err)
	}
	if string(header[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("gdb: snapshot %s: bad magic", path)
	}
	if v := binary.BigEndian.Uint16(header[len(snapshotMagic):]); v != snapshotVersion {
		return nil, fmt.Errorf("gdb: snapshot %s: unsupported version %d", path, v)
	}
	count := binary.BigEndian.Uint32(header[len(snapshotMagic)+2:])

	stores := make(map[string]*GraphStore, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.BigEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: %w", path, i, err)
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: absurd name length %d", path, i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: %w", path, i, err)
		}
		var payloadLen uint64
		if err := binary.Read(r, binary.BigEndian, &payloadLen); err != nil {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: %w", path, i, err)
		}
		if payloadLen > maxSnapshotSection {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: absurd payload length %d", path, i, payloadLen)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: %w", path, i, err)
		}
		var crc uint32
		if err := binary.Read(r, binary.BigEndian, &crc); err != nil {
			return nil, fmt.Errorf("gdb: snapshot %s: section %d: %w", path, i, err)
		}
		want := crc32.Update(crc32.ChecksumIEEE(name), crc32.IEEETable, payload)
		if crc != want {
			return nil, fmt.Errorf("gdb: snapshot %s: section %q: CRC mismatch", path, name)
		}
		s, err := ReadStore(strings.NewReader(string(payload)))
		if err != nil {
			return nil, fmt.Errorf("gdb: snapshot %s: section %q: %w", path, name, err)
		}
		stores[string(name)] = s
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("gdb: snapshot %s: trailing garbage after %d sections", path, count)
	}
	return stores, nil
}
