// Package snapneg holds near misses for snapfreeze: construction,
// cloning, and by-value copies of an annotated type.
package snapneg

// frozen is the annotated type under test.
//
// immutable after publish
type frozen struct {
	id   int
	tags []string
}

// NewFrozen builds the value field by field before anything sees it.
func NewFrozen(id int, tags []string) *frozen {
	f := &frozen{}
	f.id = id
	f.tags = append(f.tags, tags...)
	return f
}

// Clone reads the (published) receiver but mutates only the fresh copy.
func (f *frozen) Clone() *frozen {
	c := &frozen{id: f.id}
	c.tags = append(c.tags, f.tags...)
	return c
}

// byValue mutates a stack copy of the struct — private memory.
func byValue(f frozen) int {
	f.id = 99
	return f.id
}

// reads of a published value are always fine.
func sum(f *frozen) int {
	return f.id + len(f.tags)
}

// unannotated is the same shape without the marker: mutate freely.
type unannotated struct {
	id int
}

func (u *unannotated) Set(v int) { u.id = v }
