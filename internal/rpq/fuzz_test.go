package rpq

import "testing"

// FuzzRegex asserts the regex pipeline (parse, NFA, DFA) never panics
// and that NFA and minimized DFA agree on a short probe word.
func FuzzRegex(f *testing.F) {
	seeds := []string{
		"a", "a b", "a | b", "a*", "(a b)+ c?", "a_r* b",
		"((a))", "a**", "(", "|", "a |",
		// Regular fragments over the labels of the checked-in query
		// grammars (queries/*.txt): the vocabulary of the paper's
		// datasets must stay in the corpus.
		"subClassOf_r* subClassOf",
		"type_r (subClassOf | type)* type",
		"broaderTransitive+ broaderTransitive_r+",
		"(subClassOf_r subClassOf)?",
	}
	for _, s := range seeds {
		f.Add(s, "a b")
	}
	f.Add("subClassOf_r* subClassOf", "subClassOf")
	f.Fuzz(func(t *testing.T, src, wordSrc string) {
		n, err := CompileRegex(src)
		if err != nil {
			return
		}
		d := Determinize(n).Minimize()
		var word []string
		for _, c := range wordSrc {
			switch c {
			case 'a':
				word = append(word, "a")
			case 'b':
				word = append(word, "b")
			}
			if len(word) > 6 {
				break
			}
		}
		if n.AcceptsWord(word) != d.AcceptsWord(word) {
			t.Fatalf("regex %q word %v: NFA and DFA disagree", src, word)
		}
	})
}
