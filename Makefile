# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Packages with internal concurrency (query governor, index locking,
# server drain); `race-quick` covers just these, `race` the whole
# module.
RACE_PKGS = ./internal/gdb ./internal/resp ./internal/cfpq ./internal/exec

.PHONY: check all build vet test race race-quick cover bench bench-quick experiments fuzz clean

# Default: what CI runs on every change.
check: build vet test race

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-quick:
	$(GO) test -race $(RACE_PKGS)

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper table/figure plus kernel benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation artifact (tables, CSV series, SVG figures).
experiments:
	$(GO) run ./cmd/benchrunner -exp all -csv figures_sweep.csv -svg figures

bench-quick:
	$(GO) run ./cmd/benchrunner -exp all -quick

# Short fuzzing sessions over every parser.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/cypher/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/grammar/
	$(GO) test -run=NONE -fuzz=FuzzRegex -fuzztime=30s ./internal/rpq/
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/resp/

clean:
	rm -f test_output.txt bench_output.txt
