package rsm

import (
	"context"
	"errors"
	"testing"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
)

func govGraph(p int) *graph.Graph {
	g := graph.New(2 * p)
	for i := 0; i < p; i++ {
		g.AddEdge(i, "a", (i+1)%p)
	}
	prev := 0
	for i := 0; i < p-2; i++ {
		g.AddEdge(prev, "b", p+i)
		prev = p + i
	}
	g.AddEdge(prev, "b", 0)
	return g
}

func govRSM(t *testing.T) *RSM {
	t.Helper()
	r, err := FromGrammar(grammar.AnBn("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTensorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := govRSM(t)
	g := govGraph(12)
	if _, err := r.Eval(g, exec.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Eval err = %v, want context.Canceled", err)
	}
	if _, err := r.TensorAllPairs(g, exec.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("TensorAllPairs err = %v, want context.Canceled", err)
	}
}

// TestTensorCancelledContextTerminalOnly pins cancellation for a
// machine whose intersection converges immediately: the seeding loop
// itself must poll the governor, because the fixpoint body may never
// run long enough to.
func TestTensorCancelledContextTerminalOnly(t *testing.T) {
	r, err := FromGrammar(grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a")}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.TensorAllPairs(govGraph(8), exec.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("TensorAllPairs err = %v, want context.Canceled", err)
	}
}

func TestTensorBudgetAborts(t *testing.T) {
	r := govRSM(t)
	g := govGraph(24)
	if _, err := r.Eval(g, exec.WithBudget(2)); !errors.Is(err, exec.ErrBudget) {
		t.Fatalf("Eval err = %v, want exec.ErrBudget", err)
	}
}

func TestTensorGovernedResultUnchanged(t *testing.T) {
	r := govRSM(t)
	g := govGraph(10)
	want, err := r.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Eval(g, exec.WithBudget(1<<40), exec.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("governed tensor answer differs from ungoverned")
	}
}
