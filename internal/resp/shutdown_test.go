package resp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mscfpq/internal/dataset"
	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
)

// twoCycle builds the a^n b^n stress input: a cycle of p a-edges and a
// cycle of p-1 b-edges sharing vertex 0. The an^bn path query over it
// runs a long fixpoint, giving the drain tests a query that is reliably
// still in flight when Shutdown begins.
func twoCycle(p int) *graph.Graph {
	g := graph.New(2 * p)
	for i := 0; i < p; i++ {
		g.AddEdge(i, "a", (i+1)%p)
	}
	prev := 0
	for i := 0; i < p-2; i++ {
		g.AddEdge(prev, "b", p+i)
		prev = p + i
	}
	g.AddEdge(prev, "b", 0)
	return g
}

const anbnQuery = `
	PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
	MATCH (v)-/ ~S /->(to) RETURN v, to`

// startServerWith serves the given graphs and returns the address.
func startServerWith(t *testing.T, graphs map[string]*graph.Graph) (*Server, string) {
	t.Helper()
	db := gdb.New()
	for name, g := range graphs {
		db.AddGraph(name, g)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// TestServerQueryTimeout is the acceptance check of the governance
// stack end to end: a GRAPH.QUERY with a 1ms TIMEOUT clause against the
// geospecies analog comes back as a prompt timeout error, and the
// server keeps answering afterwards.
func TestServerQueryTimeout(t *testing.T) {
	spec, err := dataset.ByName("geospecies")
	if err != nil {
		t.Fatal(err)
	}
	geo := dataset.Generate(dataset.Scaled(spec, 0.04))
	_, addr := startServerWith(t, map[string]*graph.Graph{
		"geo":    geo,
		"cycles": twoCycle(4),
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const geoQuery = `
		PATH PATTERN S = ()-/ [:broaderTransitive ~S :broaderTransitive_r] | [:broaderTransitive :broaderTransitive_r] /->()
		MATCH (v)-/ ~S /->(to) RETURN v, to TIMEOUT 1`
	start := time.Now()
	_, err = c.GraphQuery("geo", geoQuery)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("1ms-timeout query succeeded")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("timed-out query took %v, want < 100ms", elapsed)
	}

	// The server (and this very connection) must remain healthy.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after timeout: %v", err)
	}
	reply, err := c.GraphQuery("cycles", anbnQuery)
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	if len(reply.Rows) == 0 {
		t.Fatal("no rows from healthy query")
	}
}

// TestServerShutdownDrains checks the graceful path: a query in flight
// when Shutdown begins still completes and its reply is delivered, new
// work is refused, and Shutdown returns nil.
func TestServerShutdownDrains(t *testing.T) {
	srv, addr := startServerWith(t, map[string]*graph.Graph{"g": twoCycle(100)})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type reply struct {
		rows int
		err  error
	}
	inflight := make(chan reply, 1)
	go func() {
		r, err := c.GraphQuery("g", anbnQuery)
		if err != nil {
			inflight <- reply{err: err}
			return
		}
		inflight <- reply{rows: len(r.Rows)}
	}()
	time.Sleep(100 * time.Millisecond) // let the query reach the fixpoint

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	got := <-inflight
	if got.err != nil {
		t.Fatalf("in-flight query aborted during graceful drain: %v", got.err)
	}
	if got.rows == 0 {
		t.Fatal("in-flight query returned no rows")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	// The listener is gone: new connections fail outright.
	if c2, err := Dial(addr); err == nil {
		c2.Close()
		t.Fatal("dial succeeded after shutdown")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown = %v", err)
	}
}

// TestServerShutdownDrainTimeout checks the force path: when the drain
// deadline expires with a query still running, the query is cancelled
// through the governor and Shutdown reports the drain error.
func TestServerShutdownDrainTimeout(t *testing.T) {
	srv, addr := startServerWith(t, map[string]*graph.Graph{"g": twoCycle(200)})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := c.GraphQuery("g", anbnQuery)
		inflight <- err
	}()
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want drain deadline error", err)
	}
	// The in-flight query was aborted: either an error reply made it out
	// or the connection was closed under it; it must not hang.
	select {
	case qerr := <-inflight:
		if qerr == nil {
			t.Fatal("aborted query reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query still running after forced shutdown")
	}
}

// TestServerRefusesDuringDrain checks that commands arriving on an
// existing connection after a drain started get an explicit refusal.
func TestServerRefusesDuringDrain(t *testing.T) {
	srv, addr := startServerWith(t, map[string]*graph.Graph{"g": twoCycle(100)})
	busy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	idle, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := busy.GraphQuery("g", anbnQuery)
		inflight <- err
	}()
	time.Sleep(100 * time.Millisecond)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let the drain flag land

	if err := idle.Ping(); err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("command during drain: err = %v, want shutting-down refusal", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight query aborted: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}
