package cfpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/matrix"
)

func TestMultiSourceSinglePathMatchesMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				n := 3 + rng.Intn(14)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				src := matrix.NewVector(n)
				for v := 0; v < n; v++ {
					if rng.Intn(3) == 0 {
						src.Set(v)
					}
				}
				ms, err := MultiSource(g, w, src)
				if err != nil {
					t.Fatal(err)
				}
				sp, err := MultiSourceSinglePath(g, w, src)
				if err != nil {
					t.Fatal(err)
				}
				if !sp.Answer().Equal(ms.Answer()) {
					t.Fatalf("trial %d: answers differ\nsp: %v\nms: %v",
						trial, sp.Answer().Pairs(), ms.Answer().Pairs())
				}
			}
		})
	}
}

func TestMultiSourceSinglePathExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := testGrammars()["anbn"]
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(12)
		g := randomGraph(rng, n, 2+rng.Intn(3*n), []string{"a", "b"})
		src := matrix.NewVector(n)
		for v := 0; v < n/2; v++ {
			src.Set(v)
		}
		sp, err := MultiSourceSinglePath(g, w, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range sp.Answer().Pairs() {
			steps, err := sp.Path(pair[0], pair[1])
			if err != nil {
				t.Fatalf("trial %d pair %v: %v", trial, pair, err)
			}
			verifyPath(t, g, w, "S", pair[0], pair[1], steps)
		}
	}
}

func TestMultiSourceSinglePathPaperExample(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	src := matrix.NewVectorFromIndices(6, []int{3})
	sp, err := MultiSourceSinglePath(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	pairs := sp.Answer().Pairs()
	if len(pairs) != 1 || pairs[0] != [2]int{3, 4} {
		t.Fatalf("answer = %v", pairs)
	}
	steps, err := sp.Path(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	word := Word(steps)
	if len(word) != 3 || word[0] != "c" || word[1] != "y" || word[2] != "d" {
		t.Fatalf("witness = %v", word)
	}
}

func TestMultiSourceSinglePathErrors(t *testing.T) {
	if _, err := MultiSourceSinglePath(nil, nil, nil); err == nil {
		t.Fatal("expected error for nil inputs")
	}
	if _, err := MultiSourceSinglePath(paperGraph(), cndGrammar(), matrix.NewVector(2)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}
