package failcover_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/failcover"
)

func TestFailCover(t *testing.T) {
	analysistest.Run(t, failcover.Analyzer, "internal/fault", "fcpos", "fcneg")
}
