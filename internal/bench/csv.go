package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteFiguresCSV emits the multiple-source sweep as CSV, one row per
// (graph, query, chunk size) point — the series behind Figures 3-8,
// ready for external plotting.
func WriteFiguresCSV(w io.Writer, series []FigureSeries) error {
	cw := csv.NewWriter(w)
	header := []string{"graph", "query", "chunk_size", "chunks",
		"ms_mean_ms", "smart_mean_ms", "ms_total_ms", "smart_total_ms", "answer_pairs"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			row := []string{
				s.Graph, s.Query,
				fmt.Sprintf("%d", p.ChunkSize), fmt.Sprintf("%d", p.Chunks),
				ms(p.MSMean), ms(p.SmartMean), ms(p.MSTotal), ms(p.SmartTotal),
				fmt.Sprintf("%d", p.Answer),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteReportCSV emits any report's rows as CSV.
func WriteReportCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rep.Columns); err != nil {
		return err
	}
	for _, row := range rep.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
