package gdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mscfpq/internal/cypher"
	"mscfpq/internal/fault"
	"mscfpq/internal/obs"
)

// durability is the crash-safety layer attached to a DB opened with
// Open: an append-only operation journal paired with atomic disk
// snapshots, plus the background auto-saver driven by
// Policy.SaveInterval.
//
// Invariant: snapshot seq N contains exactly the mutations journaled
// in wal sequences < N plus those of wal N that never happened (wal N
// starts empty at rotation). commitMu enforces the cut: every mutation
// holds it shared from journal append through in-memory apply, and
// Save holds it exclusively from state capture through journal
// rotation, so no acknowledged mutation can fall between a snapshot
// and the journal that survives it.
type durability struct {
	dir string

	// commitMu orders mutations against snapshots (see above).
	commitMu sync.RWMutex

	// mu serializes journal appends and stays held through each
	// mutation's in-memory apply (see commit), so live apply order
	// always matches journal order — the order crash replay uses.
	mu     sync.Mutex
	seq    uint64   // guarded by mu: sequence of the live snapshot/journal pair
	off    int64    // guarded by mu: byte length of the live journal's intact record prefix
	jf     *os.File // guarded by mu: open journal, nil after Close
	closed bool     // guarded by mu
	broken error    // guarded by mu: set when a failed append could not be rolled back; a successful Save clears it

	// watch is closed (and replaced) on every journal append, rotation,
	// or snapshot install, so replication tails can block for new data
	// without polling.
	watch chan struct{} // guarded by mu

	// pins holds sequences whose snapshot/journal files a live reader
	// (a replication tail mid-transfer) still needs; prune spares them.
	pins map[uint64]int // guarded by mu

	// Auto-saver lifecycle: kick wakes it on policy changes, stop ends
	// it, done closes when it exits.
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// ErrClosed is returned by mutations and saves on a closed database.
var ErrClosed = errors.New("gdb: database is closed")

// ErrNotDurable is returned by Save on a database without a data
// directory.
var ErrNotDurable = errors.New("gdb: database has no data directory (opened with New, not Open)")

// Open loads (or initializes) a durable database rooted at dir:
// leftover temp files are discarded, the newest valid snapshot is
// loaded (older ones are fallbacks against corruption), its paired
// journal is replayed — truncating a torn tail instead of failing —
// and the journal is reopened for appending. The returned DB journals
// every mutating command before acknowledging it; use Save (or
// Policy.SaveInterval) to cut snapshots and Close to detach cleanly.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gdb: open %s: %w", dir, err)
	}
	removeTempFiles(dir)

	db := New()
	dur := &durability{
		dir:   dir,
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		watch: make(chan struct{}),
		pins:  map[uint64]int{},
	}

	seq, stores, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.graphs = stores
	db.mu.Unlock()

	good, err := dur.replayInto(db, seq)
	if err != nil {
		return nil, err
	}

	jf, err := os.OpenFile(journalPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("gdb: open journal: %w", err)
	}
	dur.seq = seq
	dur.off = good
	dur.jf = jf
	db.dur = dur
	go db.autoSaver()
	return db, nil
}

// Durable reports whether the database journals to disk.
func (db *DB) Durable() bool { return db.dur != nil }

// DataDir returns the durable database's directory ("" when opened
// with New).
func (db *DB) DataDir() string {
	if db.dur == nil {
		return ""
	}
	return db.dur.dir
}

// removeTempFiles discards snapshot temp files left by a crash
// mid-write; they were never renamed into place so they hold nothing
// durable.
func removeTempFiles(dir string) {
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return
	}
	for _, t := range tmps {
		// Best-effort cleanup; a stale temp file is inert.
		_ = os.Remove(t)
	}
}

// snapshotSeqs lists the sequences with a snapshot file in dir,
// ascending.
func snapshotSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// loadNewestSnapshot returns the stores of the newest snapshot that
// validates, falling back to older ones on damage. No snapshot at all
// is a fresh database (seq 0); snapshots present but none valid is an
// error — silently starting empty would masquerade as data loss.
func loadNewestSnapshot(dir string) (uint64, map[string]*GraphStore, error) {
	seqs, err := snapshotSeqs(dir)
	if err != nil {
		return 0, nil, fmt.Errorf("gdb: open %s: %w", dir, err)
	}
	if len(seqs) == 0 {
		return 0, map[string]*GraphStore{}, nil
	}
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		stores, err := readSnapshotFile(snapshotPath(dir, seqs[i]))
		if err == nil {
			return seqs[i], stores, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return 0, nil, fmt.Errorf("gdb: no valid snapshot in %s (newest: %w)", dir, firstErr)
}

// Failpoints on the error-handling edges of durability: rolling a
// partial journal record back, truncating a torn tail during
// recovery, and the final sync on Close. They live outside the chaos
// suite's gdb.snapshot./gdb.journal. enumeration on purpose — those
// points must all fire during a plain Save/Query pass, while these
// only trigger on failure paths (see faultpath_test.go).
const (
	FPRollbackTruncate = "gdb.rollback.truncate"
	FPRecoverTruncate  = "gdb.recover.truncate"
	FPCloseSync        = "gdb.close.sync"
)

var _ = fault.Declare(FPRollbackTruncate, FPRecoverTruncate, FPCloseSync)

// truncateJournal rolls the live journal back to size, dropping the
// bytes of a partially appended record.
func truncateJournal(f *os.File, size int64) error {
	if err := fault.Inject(FPRollbackTruncate); err != nil {
		return err
	}
	return f.Truncate(size)
}

// syncJournalOnClose flushes the journal one last time before the
// file handle is released.
func syncJournalOnClose(f *os.File) error {
	if err := fault.Inject(FPCloseSync); err != nil {
		return err
	}
	return f.Sync()
}

// replayInto re-applies the journal paired with snapshot seq and
// truncates any torn tail so the next append starts on a record
// boundary. It returns the byte length of the intact record prefix —
// the recovered journal offset a replication handshake resumes from.
func (dur *durability) replayInto(db *DB, seq uint64) (int64, error) {
	path := journalPath(dur.dir, seq)
	ops, good, torn, err := readJournal(path)
	if err != nil {
		return 0, fmt.Errorf("gdb: journal replay: %w", err)
	}
	for _, op := range ops {
		if err := db.applyOp(op); err != nil {
			return 0, fmt.Errorf("gdb: journal replay: %w", err)
		}
	}
	if torn {
		if err := fault.Inject(FPRecoverTruncate); err != nil {
			return 0, fmt.Errorf("gdb: truncating torn journal tail: %w", err)
		}
		if err := os.Truncate(path, good); err != nil {
			return 0, fmt.Errorf("gdb: truncating torn journal tail: %w", err)
		}
	}
	return good, nil
}

// applyOp applies one journaled mutation during replay.
func (db *DB) applyOp(op journalOp) error {
	switch op.op {
	case opCypher:
		q, err := cypher.Parse(op.arg)
		if err != nil || q.Create == nil {
			return fmt.Errorf("gdb: journaled statement no longer parses as a write: %q", op.arg)
		}
		// Replay repeats the original call exactly; a statement that
		// failed halfway when journaled fails at the same point now,
		// reproducing the acknowledged (partial) state.
		//lint:ignore errdrop the op's error was already delivered to the client when it ran live
		_, _ = db.runCreate(op.name, q)
		return nil
	case opRestore:
		s, err := ReadStore(strings.NewReader(op.arg))
		if err != nil {
			return fmt.Errorf("gdb: journaled restore of %q no longer decodes: %w", op.name, err)
		}
		db.mu.Lock()
		db.graphs[op.name] = s
		db.mu.Unlock()
		return nil
	case opDelete:
		db.mu.Lock()
		delete(db.graphs, op.name)
		db.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("gdb: unknown journal opcode %q", op.op)
	}
}

// commit journals op (when durable) and then runs apply. The commit
// lock is held shared across both so a concurrent Save sees either
// none or all of the mutation, and dur.mu — the lock that orders
// journal appends — stays held through apply so mutations reach
// memory in exactly the order they reached the journal. Replay runs
// in journal order, and applies are order-sensitive (runCreate
// assigns vertex IDs from the current vertex count, Restore replaces
// whole stores), so a live apply order that diverged from the append
// order would make crash recovery reconstruct a state that never
// existed. Both locks unlock by defer so a panicking handler (or an
// armed panic failpoint) cannot wedge the database. The journal
// append is fsynced before apply runs: an acknowledged mutation is
// always recoverable.
func (db *DB) commit(op journalOp, apply func()) error {
	if err := db.readOnlyErr(); err != nil {
		return err
	}
	if db.dur == nil {
		apply()
		return nil
	}
	db.dur.commitMu.RLock()
	defer db.dur.commitMu.RUnlock()
	db.dur.mu.Lock()
	defer db.dur.mu.Unlock()
	if db.dur.closed {
		return ErrClosed
	}
	if db.dur.broken != nil {
		return fmt.Errorf("gdb: journal unusable (GRAPH.SAVE rotates in a fresh one): %w", db.dur.broken)
	}
	st, err := db.dur.jf.Stat()
	if err != nil {
		return fmt.Errorf("gdb: journal append: %w", err)
	}
	n, err := appendJournal(db.dur.jf, op)
	if err != nil {
		// Roll the partial record back: replay stops at the first
		// torn record, so leaving its bytes in place would strand
		// every record appended after it. If even the rollback
		// fails the journal is unusable until a Save rotates it
		// out.
		if terr := truncateJournal(db.dur.jf, st.Size()); terr != nil {
			db.dur.broken = terr
		}
		return err
	}
	db.dur.off += n
	db.dur.notifyLocked()
	apply()
	return nil
}

// notifyLocked wakes every journal watcher. Caller holds dur.mu.
func (dur *durability) notifyLocked() {
	close(dur.watch)
	dur.watch = make(chan struct{})
}

// Save cuts a snapshot: the full database image is written atomically
// under the next sequence, the journal rotates to a fresh file, and
// stale snapshots/journals are pruned (the previous snapshot and its
// paired journal are kept as a fallback against bit rot). Concurrent
// mutations block for the duration; queries do not. This is the
// GRAPH.SAVE command. On a replica, rotation is driven by the
// replication stream (ReplRotate) so the local file sequence stays in
// lockstep with the leader's; an out-of-band Save is refused.
func (db *DB) Save() error {
	if err := db.readOnlyErr(); err != nil {
		return err
	}
	return db.save()
}

// save is Save without the replica-mode gate — the shared path for
// GRAPH.SAVE on a leader and lockstep rotation on a follower.
func (db *DB) save() error {
	if db.dur == nil {
		return ErrNotDurable
	}
	dur := db.dur
	dur.commitMu.Lock()
	defer dur.commitMu.Unlock()

	dur.mu.Lock()
	closed, seq := dur.closed, dur.seq
	dur.mu.Unlock()
	if closed {
		return ErrClosed
	}

	db.mu.RLock()
	stores := make(map[string]*GraphStore, len(db.graphs))
	for name, s := range db.graphs {
		stores[name] = s
	}
	db.mu.RUnlock()

	// Crash-ordering invariant: the next journal is created and made
	// durable BEFORE the snapshot is renamed into place, so a snapshot
	// that is visible always has its paired journal on disk — recovery
	// never faces a snapshot whose acknowledged successors lived in a
	// journal it does not know to replay. A failed (or crashed) save
	// leaves at worst a stale empty wal file, which the next save
	// truncates and reuses.
	next := seq + 1
	nf, err := dur.prepareJournal(next)
	if err != nil {
		return err
	}
	if err := writeSnapshotFile(dur.dir, next, stores); err != nil {
		//lint:ignore errdrop the snapshot failure is the error to surface; the spare journal file is inert
		_ = nf.Close()
		// Undo — snapshot first: when the failure struck after the
		// rename (the dirsync step), leaving the new snapshot visible
		// while journaling continues under the old sequence would
		// strand every later acked record at recovery. ErrNotExist just
		// means the rename never happened; any other removal failure
		// poisons the journal so mutations stop until a Save heals it.
		if rerr := os.Remove(snapshotPath(dur.dir, next)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			dur.mu.Lock()
			dur.broken = rerr
			dur.mu.Unlock()
		} else {
			// Best-effort cleanup; a stale empty journal is truncated on the next save.
			_ = os.Remove(journalPath(dur.dir, next))
		}
		return err
	}
	// The new snapshot is durable: swap journals. The swap is pure
	// memory and cannot fail; a close error on the retired journal
	// cannot lose data (every record in it was already fsynced). A
	// poisoned journal is healed here — its garbage tail retires with
	// the old file. Close may have raced the snapshot write (the
	// auto-saver can be inside Save when Close runs): re-check closed
	// before installing, or the new journal fd would leak into a
	// closed durability and old would be nil. Retiring the fresh pair
	// instead is safe — Save held commitMu throughout, so the state
	// the snapshot captured is exactly what the journal Close fsyncs
	// already covers.
	dur.mu.Lock()
	if dur.closed {
		dur.mu.Unlock()
		//lint:ignore errdrop best-effort retirement of the unused journal fd
		_ = nf.Close()
		// Best-effort cleanup; a leftover pair is consistent (see above) and recovery validates it.
		_ = os.Remove(snapshotPath(dur.dir, next))
		// Ditto.
		_ = os.Remove(journalPath(dur.dir, next))
		return ErrClosed
	}
	old := dur.jf
	dur.jf = nf
	dur.seq = next
	dur.off = 0
	dur.broken = nil
	dur.notifyLocked()
	dur.mu.Unlock()
	obs.DurRotations.Inc()
	if old != nil {
		if err := old.Close(); err != nil {
			return fmt.Errorf("gdb: journal rotate: closing previous journal: %w", err)
		}
	}
	dur.prune(next)
	return nil
}

// prepareJournal creates (or truncates) the journal of the next
// sequence and fsyncs the directory, so the file is durable before the
// snapshot it pairs with becomes visible.
func (dur *durability) prepareJournal(next uint64) (*os.File, error) {
	if err := fault.Inject(FPJournalRotate); err != nil {
		return nil, fmt.Errorf("gdb: journal rotate: %w", err)
	}
	nf, err := os.OpenFile(journalPath(dur.dir, next), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("gdb: journal rotate: %w", err)
	}
	if err := syncDir(dur.dir); err != nil {
		//lint:ignore errdrop the dirsync failure is the error to surface; the spare journal file is inert
		_ = nf.Close()
		return nil, fmt.Errorf("gdb: journal rotate: %w", err)
	}
	return nf, nil
}

// prune removes everything older than the fallback snapshot/journal
// pair. The previous snapshot is kept as a fallback against bit rot
// TOGETHER WITH its paired journal: a recovery that falls back to
// snap N-1 replays wal N-1, reaching the state snap N captured, so it
// loses none of the acknowledged ops that journal fsynced (pruning
// only the journal would silently drop them — replay treats a missing
// file as empty). Sequence 0 has no snapshot (it is the empty genesis
// store, unusable as a fallback once snap-1 exists), so at current 1
// only the live pair is kept. Sequences pinned by a live reader (a
// replication tail mid-transfer, see PinSegment) are spared no matter
// how old — deleting a wal segment under an open tail would tear the
// stream. Best-effort: a leftover file wastes disk but cannot corrupt
// recovery, which always prefers the newest valid pair.
func (dur *durability) prune(current uint64) {
	entries, err := os.ReadDir(dur.dir)
	if err != nil {
		return
	}
	dur.mu.Lock()
	pinned := make(map[uint64]bool, len(dur.pins))
	for seq := range dur.pins {
		pinned[seq] = true
	}
	dur.mu.Unlock()
	keep := current // oldest sequence retained
	if current >= 2 {
		keep = current - 1
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && seq < keep && !pinned[seq] {
			// Best-effort pruning; stale snapshots are harmless.
			_ = os.Remove(filepath.Join(dur.dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok && seq < keep && !pinned[seq] {
			// Best-effort pruning; retired journals are harmless.
			_ = os.Remove(filepath.Join(dur.dir, e.Name()))
		}
	}
}

// Close stops the auto-saver and detaches the journal after a final
// fsync. Further mutations and saves return ErrClosed; queries keep
// answering from memory. Close does not cut a final snapshot — callers
// wanting one call Save first (gsql-server does on graceful
// shutdown).
func (db *DB) Close() error {
	if db.dur == nil {
		return nil
	}
	dur := db.dur
	dur.mu.Lock()
	if dur.closed {
		dur.mu.Unlock()
		return nil
	}
	dur.closed = true
	jf := dur.jf
	dur.jf = nil
	dur.mu.Unlock()

	close(dur.stop)
	<-dur.done

	if err := syncJournalOnClose(jf); err != nil {
		//lint:ignore errdrop the sync failure is the error to surface; close cannot add to it
		_ = jf.Close()
		return fmt.Errorf("gdb: close: %w", err)
	}
	if err := jf.Close(); err != nil {
		return fmt.Errorf("gdb: close: %w", err)
	}
	return nil
}

// autoSaver cuts snapshots every Policy.SaveInterval. A zero interval
// parks until SetPolicy kicks it; save failures are reported to the
// policy log and retried next interval.
func (db *DB) autoSaver() {
	defer close(db.dur.done)
	for {
		var tick <-chan time.Time
		var timer *time.Timer
		if iv := db.Policy().SaveInterval; iv > 0 {
			timer = time.NewTimer(iv)
			tick = timer.C
		}
		select {
		case <-db.dur.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-db.dur.kick:
			if timer != nil {
				timer.Stop()
			}
		case <-tick:
			if err := db.Save(); err != nil && !errors.Is(err, ErrClosed) {
				if l := db.Policy().Log; l != nil {
					l.Printf("auto-save failed: %v", err)
				}
			}
		}
	}
}

// kickAutoSaver wakes the auto-saver so a policy change takes effect
// immediately.
func (db *DB) kickAutoSaver() {
	if db.dur == nil {
		return
	}
	select {
	case db.dur.kick <- struct{}{}:
	default:
	}
}
