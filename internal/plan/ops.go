package plan

import (
	"fmt"
	"strings"

	"mscfpq/internal/algebra"
	"mscfpq/internal/cypher"
	"mscfpq/internal/matrix"
)

// Record binds pattern variables (by slot) to vertex ids; -1 = unbound.
type Record []int64

func (r Record) clone() Record { return append(Record(nil), r...) }

// Operation is one node of the execution plan tree. Operations pull
// records from their child (paper Figure 13), process them and produce
// records for their parent.
type Operation interface {
	// Open prepares the operation (and its subtree) for execution.
	Open() error
	// Next returns the next record, or nil when exhausted.
	Next() (Record, error)
	// Explain renders the operation for plan display.
	Explain() string
	// Child returns the input operation, or nil.
	Child() Operation
}

// ---------------------------------------------------------------------
// NodeScan: AllNodeScan / LabelScan (paper Figure 13).

// NodeScan binds a variable to every vertex (optionally restricted to a
// label). With a child, it extends or filters the child's records; at
// the leaf it generates records from the graph.
type NodeScan struct {
	env    *Env
	slots  int
	slot   int
	label  string // "" = all vertices
	child  Operation
	cur    Record
	verts  []int
	pos    int
	opened bool
}

// NewNodeScan builds a scan binding slot; slots is the record width.
func NewNodeScan(env *Env, child Operation, slots, slot int, label string) *NodeScan {
	return &NodeScan{env: env, child: child, slots: slots, slot: slot, label: label}
}

func (s *NodeScan) Open() error {
	if s.child != nil {
		if err := s.child.Open(); err != nil {
			return err
		}
	}
	if s.label == "" {
		n := s.env.G.NumVertices()
		s.verts = make([]int, n)
		for i := range s.verts {
			s.verts[i] = i
		}
	} else {
		s.verts = s.env.G.VertexSet(s.label).Ints()
	}
	s.cur = nil
	s.pos = 0
	s.opened = true
	return nil
}

func (s *NodeScan) Next() (Record, error) {
	if !s.opened {
		return nil, fmt.Errorf("plan: NodeScan not opened")
	}
	for {
		if s.cur == nil {
			if s.child == nil {
				if s.pos == -1 {
					return nil, nil
				}
				// Leaf: one synthetic empty record drives the vertex loop.
				s.cur = make(Record, s.slots)
				for i := range s.cur {
					s.cur[i] = -1
				}
				s.pos = 0
				continue
			}
			rec, err := s.child.Next()
			if err != nil || rec == nil {
				return nil, err
			}
			s.cur = rec
			s.pos = 0
		}
		if bound := s.cur[s.slot]; bound >= 0 {
			// Variable already bound: act as a label filter.
			rec := s.cur
			s.cur = nil
			if s.child == nil {
				s.pos = -1
			}
			if s.label == "" || s.env.G.HasVertexLabel(int(bound), s.label) {
				return rec, nil
			}
			continue
		}
		if s.pos >= len(s.verts) {
			s.cur = nil
			if s.child == nil {
				s.pos = -1
			}
			continue
		}
		rec := s.cur.clone()
		rec[s.slot] = int64(s.verts[s.pos])
		s.pos++
		return rec, nil
	}
}

func (s *NodeScan) Explain() string {
	if s.label == "" {
		return fmt.Sprintf("AllNodeScan(slot=%d)", s.slot)
	}
	return fmt.Sprintf("LabelScan(slot=%d, label=%s)", s.slot, s.label)
}

func (s *NodeScan) Child() Operation { return s.child }

// ---------------------------------------------------------------------
// Traverse: CondTraverse / CFPQTraverse (paper Figure 12).

// traverseBatchSize bounds the record buffer a traverse accumulates
// before one algebraic evaluation (the paper's record buffer).
const traverseBatchSize = 1024

// Traverse consumes records, buffers them, builds the filter matrix of
// their bound source vertices, evaluates filter * expr (resolving
// references for CFPQTraverse) and emits one record per resulting pair.
type Traverse struct {
	name     string // CondTraverse or CFPQTraverse
	env      *Env
	child    Operation
	fromSlot int
	toSlot   int
	expr     algebra.Expr
	isPath   bool

	buf     []Record
	rows    *matrix.Bool // evaluation result for the current batch
	bufIdx  int          // record being expanded
	rowPos  int          // position within that record's row
	done    bool
	covered bool
}

// NewCondTraverse builds the traverse operation for a relationship
// pattern.
func NewCondTraverse(env *Env, child Operation, fromSlot, toSlot int, expr algebra.Expr) *Traverse {
	return &Traverse{name: "CondTraverse", env: env, child: child,
		fromSlot: fromSlot, toSlot: toSlot, expr: expr}
}

// NewCFPQTraverse builds the traverse operation for a path pattern; its
// expression may reference named path patterns.
func NewCFPQTraverse(env *Env, child Operation, fromSlot, toSlot int, expr algebra.Expr) *Traverse {
	return &Traverse{name: "CFPQTraverse", env: env, child: child,
		fromSlot: fromSlot, toSlot: toSlot, expr: expr, isPath: true}
}

func (t *Traverse) Open() error {
	t.buf, t.rows, t.done = nil, nil, false
	t.bufIdx, t.rowPos = 0, 0
	t.covered = false
	return t.child.Open()
}

func (t *Traverse) Next() (Record, error) {
	for {
		// Emit from the current batch.
		for t.rows != nil && t.bufIdx < len(t.buf) {
			rec := t.buf[t.bufIdx]
			src := rec[t.fromSlot]
			row := t.rows.Row(int(src))
			if t.rowPos < len(row) {
				dst := int64(row[t.rowPos])
				t.rowPos++
				if bound := rec[t.toSlot]; bound >= 0 {
					if bound != dst {
						continue
					}
					return rec.clone(), nil
				}
				out := rec.clone()
				out[t.toSlot] = dst
				return out, nil
			}
			t.bufIdx++
			t.rowPos = 0
		}
		if t.done {
			return nil, nil
		}
		if err := t.fillBatch(); err != nil {
			return nil, err
		}
		if len(t.buf) == 0 && t.done {
			return nil, nil
		}
	}
}

func (t *Traverse) fillBatch() error {
	t.buf = t.buf[:0]
	t.bufIdx, t.rowPos = 0, 0
	t.rows = nil
	srcs := matrix.NewVector(t.env.G.NumVertices())
	for len(t.buf) < traverseBatchSize {
		rec, err := t.child.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			t.done = true
			break
		}
		src := rec[t.fromSlot]
		if src < 0 {
			return fmt.Errorf("plan: %s consumed a record with unbound source slot %d", t.name, t.fromSlot)
		}
		srcs.Set(int(src))
		t.buf = append(t.buf, rec)
	}
	if len(t.buf) == 0 {
		return nil
	}
	// Build the filter matrix from the buffered source vertices and
	// embed it on the left of the algebraic expression (Section 4.3.2).
	filtered := prependFilter(algebra.Fixed{Name: "Filter", M: srcs.Diag()}, t.expr)
	var (
		m   *matrix.Bool
		err error
	)
	if t.isPath && t.env.Ctx != nil {
		if !t.covered {
			// References that Algorithm 8 cannot see (e.g. under a
			// transpose) are solved for all vertices once.
			t.requestUncovered()
			t.covered = true
		}
		m, err = t.env.Ctx.EvalResolved(filtered, t.env)
	} else {
		m, err = algebra.Eval(filtered, t.env)
	}
	if err != nil {
		return err
	}
	t.rows = m
	return nil
}

// requestUncovered notes full source sets for references the
// multiplication rule will not reach (anything but a direct right
// operand of a multiplication).
func (t *Traverse) requestUncovered() {
	n := t.env.G.NumVertices()
	full := matrix.NewVector(n)
	for i := 0; i < n; i++ {
		full.Set(i)
	}
	var walk func(e algebra.Expr, covered bool)
	walk = func(e algebra.Expr, covered bool) {
		switch v := e.(type) {
		case algebra.Mul:
			walk(v.L, covered)
			if _, isRef := v.R.(algebra.Ref); isRef {
				return // reached by Algorithm 8
			}
			walk(v.R, false)
		case algebra.Add:
			walk(v.L, covered)
			walk(v.R, covered)
		case algebra.Transpose:
			walk(v.Sub, false)
		case algebra.Star:
			walk(v.Sub, false)
		case algebra.Plus:
			walk(v.Sub, false)
		case algebra.Opt:
			walk(v.Sub, false)
		case algebra.Ref:
			t.env.NoteRefSources(v.Name, full)
		}
	}
	// The filter is prepended as the leftmost factor, so top-level
	// right-of-mul refs are covered; walk the raw expression the same
	// way prependFilter associates it.
	walk(prependFilter(algebra.Fixed{Name: "Filter", M: matrix.NewBool(n, n)}, t.expr), false)
}

// prependFilter multiplies the filter onto the leftmost factor,
// distributing over alternation so Algorithm 8 sees every reference
// chain with its proper source set.
func prependFilter(filter algebra.Expr, e algebra.Expr) algebra.Expr {
	switch v := e.(type) {
	case algebra.Mul:
		return algebra.Mul{L: prependFilter(filter, v.L), R: v.R}
	case algebra.Add:
		return algebra.Add{L: prependFilter(filter, v.L), R: prependFilter(filter, v.R)}
	default:
		return algebra.Mul{L: filter, R: e}
	}
}

func (t *Traverse) Explain() string {
	return fmt.Sprintf("%s(from=%d, to=%d, expr=%s)", t.name, t.fromSlot, t.toSlot, t.expr.String())
}

func (t *Traverse) Child() Operation { return t.child }

// ---------------------------------------------------------------------
// Filter.

// Filter drops records failing a WHERE predicate.
type Filter struct {
	env   *Env
	child Operation
	pred  cypher.Expr
	slots map[string]int
}

// NewFilter builds a filter for one predicate.
func NewFilter(env *Env, child Operation, pred cypher.Expr, slots map[string]int) *Filter {
	return &Filter{env: env, child: child, pred: pred, slots: slots}
}

func (f *Filter) Open() error { return f.child.Open() }

func (f *Filter) Next() (Record, error) {
	for {
		rec, err := f.child.Next()
		if err != nil || rec == nil {
			return nil, err
		}
		ok, err := f.evalPred(f.pred, rec)
		if err != nil {
			return nil, err
		}
		if ok {
			return rec, nil
		}
	}
}

func (f *Filter) evalPred(e cypher.Expr, rec Record) (bool, error) {
	switch v := e.(type) {
	case cypher.AndExpr:
		l, err := f.evalPred(v.Left, rec)
		if err != nil || !l {
			return false, err
		}
		return f.evalPred(v.Right, rec)
	case cypher.IDCompare:
		id, err := f.bound(v.Var, rec)
		if err != nil {
			return false, err
		}
		return id == v.ID, nil
	case cypher.IDIn:
		id, err := f.bound(v.Var, rec)
		if err != nil {
			return false, err
		}
		for _, want := range v.IDs {
			if id == want {
				return true, nil
			}
		}
		return false, nil
	case cypher.HasLabel:
		id, err := f.bound(v.Var, rec)
		if err != nil {
			return false, err
		}
		return f.env.G.HasVertexLabel(int(id), v.Label), nil
	case cypher.PropCompare:
		id, err := f.bound(v.Var, rec)
		if err != nil {
			return false, err
		}
		if f.env.Props == nil {
			return false, fmt.Errorf("plan: property predicates need a property store")
		}
		return f.env.Props.PropEquals(int(id), v.Key, v.Val), nil
	default:
		return false, fmt.Errorf("plan: unsupported predicate %T", e)
	}
}

func (f *Filter) bound(v string, rec Record) (int64, error) {
	slot, ok := f.slots[v]
	if !ok {
		return 0, fmt.Errorf("plan: unknown variable %q in WHERE", v)
	}
	id := rec[slot]
	if id < 0 {
		return 0, fmt.Errorf("plan: variable %q unbound in WHERE", v)
	}
	return id, nil
}

func (f *Filter) Explain() string  { return "Filter(" + predString(f.pred) + ")" }
func (f *Filter) Child() Operation { return f.child }

func predString(e cypher.Expr) string {
	type es interface{ exprString() string }
	if v, ok := e.(es); ok {
		return v.exprString()
	}
	return fmt.Sprintf("%T", e)
}

// ---------------------------------------------------------------------
// Project.

// Project renders output rows from records.
type Project struct {
	child   Operation
	columns []string
	slots   []int
}

// NewProject builds the projection.
func NewProject(child Operation, columns []string, slots []int) *Project {
	return &Project{child: child, columns: columns, slots: slots}
}

func (p *Project) Open() error { return p.child.Open() }

func (p *Project) Next() (Record, error) {
	rec, err := p.child.Next()
	if err != nil || rec == nil {
		return nil, err
	}
	out := make(Record, len(p.slots))
	for i, s := range p.slots {
		out[i] = rec[s]
	}
	return out, nil
}

func (p *Project) Explain() string {
	return "Project(" + strings.Join(p.columns, ", ") + ")"
}

func (p *Project) Child() Operation { return p.child }
